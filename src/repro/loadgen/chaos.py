"""Chaos injection: SIGKILL a live backend mid-burst, then prove recovery.

The controller is deliberately dumb — it learns the topology the same
way any operator would (``GET /healthz``, which lists every backend with
its pid when the router supervises the process) and sends ``SIGKILL``,
the one signal a process cannot trap.  Everything interesting happens in
the serving stack: the router must notice the dead shard, respawn it
once (not once per queued request), replay the journal, restore the
snapshot, and keep answering — and the driver's recovery phase plus the
``warm-recovery`` SLO assert all of that from the outside.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import ReproError


class ChaosError(ReproError):
    """Chaos was requested but cannot be delivered."""


@dataclass(frozen=True)
class ChaosPlan:
    """When and how hard to strike.

    ``at_fraction`` positions the kill inside the chaos-eligible phase
    (0.5 = halfway through its events) so the burst is genuinely
    mid-flight; ``kills`` > 1 strikes repeatedly, evenly spaced over the
    remaining events.
    """

    kills: int = 1
    at_fraction: float = 0.5
    seed: int = 2013

    def kill_indices(self, events_in_phase: int) -> List[int]:
        """Event indices (within the chaos phase) that trigger a strike."""
        if self.kills < 1 or events_in_phase < 1:
            return []
        first = min(int(self.at_fraction * events_in_phase),
                    events_in_phase - 1)
        if self.kills == 1:
            return [first]
        remaining = events_in_phase - first
        step = max(1, remaining // self.kills)
        return [min(first + index * step, events_in_phase - 1)
                for index in range(self.kills)]


@dataclass
class KillRecord:
    backend_id: str
    pid: int
    phase: str
    event_index: int
    at_monotonic: float

    def to_doc(self) -> dict:
        return {"backend_id": self.backend_id, "pid": self.pid,
                "phase": self.phase, "event_index": self.event_index}


class ChaosController:
    """Picks victims (deterministically, per plan seed) and strikes."""

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self.records: List[KillRecord] = []
        self._rng = random.Random(plan.seed)

    @property
    def kills(self) -> int:
        return len(self.records)

    @staticmethod
    def killable_backends(healthz: dict) -> List[dict]:
        """Backends the controller can strike: managed, with a pid."""
        backends = healthz.get("backends") or []
        return [backend for backend in backends
                if backend.get("managed") and backend.get("pid")]

    def strike(self, healthz: dict, *, phase: str,
               event_index: int) -> KillRecord:
        """SIGKILL one managed backend chosen from the health view."""
        victims = self.killable_backends(healthz)
        if not victims:
            raise ChaosError(
                "no managed backend with a pid to kill — chaos needs a "
                "router-supervised topology (repro route), not attached "
                "backends")
        victim = victims[self._rng.randrange(len(victims))]
        pid = int(victim["pid"])
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            # Already dead (e.g. crashed on its own); the respawn path is
            # exercised either way, so record the strike as delivered.
            pass
        except OSError as exc:
            raise ChaosError(f"cannot kill backend pid {pid}: {exc}")
        record = KillRecord(backend_id=str(victim.get("backend_id")),
                            pid=pid, phase=phase, event_index=event_index,
                            at_monotonic=time.monotonic())
        self.records.append(record)
        return record

    def report(self, router_stats: Optional[dict],
               journal_scenes: int) -> dict:
        """The report's ``chaos`` section, including recovery evidence.

        ``reregistration_storm_bounded`` is the "no retry storm" check:
        after a kill, the router re-teaches scenes one ``unknown scene``
        retry at a time, so the re-registration count across the run
        must stay within the journaled scene population per kill — if
        each query of each scene re-registered, this blows up
        immediately.
        """
        section = {
            "kills": self.kills,
            "records": [record.to_doc() for record in self.records],
            "observed_restarts": None,
            "observed_reregistrations": None,
            "observed_failovers": None,
            "degraded_served": None,
            "retry_budget": None,
            "reregistration_storm_bounded": None,
            "recovered": None,
        }
        if router_stats is not None:
            restarts = router_stats.get("restarts", 0)
            reregistrations = router_stats.get("reregistrations", 0)
            section["observed_restarts"] = restarts
            section["observed_reregistrations"] = reregistrations
            section["observed_failovers"] = router_stats.get("failovers")
            section["degraded_served"] = router_stats.get(
                "degraded_served")
            section["retry_budget"] = router_stats.get("retry_budget")
            bound = max(1, self.kills) * max(journal_scenes, 1)
            section["reregistration_storm_bounded"] = (
                reregistrations <= bound)
            section["recovered"] = (self.kills == 0
                                    or restarts >= self.kills)
        return section


@dataclass
class ChaosOutcome:
    """What the driver hands the report builder."""

    plan: ChaosPlan
    controller: ChaosController
    router_stats: Optional[dict] = None
    journal_scenes: int = 0
    extra: dict = field(default_factory=dict)

    def to_doc(self) -> dict:
        doc = self.controller.report(self.router_stats,
                                     self.journal_scenes)
        doc.update(self.extra)
        return doc
