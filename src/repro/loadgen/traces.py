"""Workload traces: a reproducible, self-contained serving workload.

A trace is a JSON document carrying everything a driver needs to replay
the workload against any topology: the scene texts themselves (content
addressing makes registration idempotent, so embedding the text keeps
the trace portable), a phase plan, and a flat timeline of events.  The
generator draws every stochastic choice from one ``random.Random(seed)``,
and serialisation is canonical (sorted keys, fixed float rounding), so
two generations from the same spec are **byte-identical** — asserted by
a regression test, and the property that lets CI compare a measured
``BENCH_serve.json`` against the committed one knowing both ran the
same requests.

The workload shape follows the north-star traffic model:

* **Zipf scene popularity** — a hot working set absorbs most queries
  (:class:`~repro.loadgen.arrivals.ZipfSampler`).
* **Mixed cold/warm traffic** — the prime phase registers and first-
  completes the hot set; steady traffic then hits warm caches at
  Zipf-weighted rates while churn keeps injecting cold registrations.
* **Tenant churn** — fresh per-tenant scene variants (distinct texts →
  distinct content-addressed ids) arrive throughout the steady phase
  and older ones are released, exercising LRU eviction, journal
  appends, and tombstones.  Tenants are named after the Table 3 corpus
  projects (:mod:`repro.corpus.projects`).
* **Bursty arrivals** — the burst phase drives the hot set with an
  on/off modulated Poisson process; chaos kills land here.
* **Recovery** — a closed-loop sweep of the hot set after the burst;
  with snapshots + journal replay these must be warm hits even when a
  backend was killed mid-burst.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ReproError
from repro.corpus.projects import all_projects
from repro.loadgen.arrivals import ZipfSampler, bursty_arrivals, poisson_arrivals

TRACE_SCHEMA = "loadgen-trace/v1"

#: Shipped example scenes — the base texts tenant variants derive from.
DEFAULT_SCENES_DIR = Path(__file__).resolve().parents[3] / "examples/scenes"

#: Phase names, in replay order.
PHASE_PRIME = "prime"
PHASE_STEADY = "steady"
PHASE_BURST = "burst"
PHASE_RECOVERY = "recovery"


class TraceError(ReproError):
    """A trace file or spec is malformed."""


@dataclass(frozen=True)
class TraceEvent:
    """One replayable request."""

    t_ms: float                     # offset from phase start (open-loop)
    phase: str
    op: str                         # "register" | "complete" | "release"
    scene: str                      # scene key into Trace.scenes
    n: int = 10                     # snippets requested (complete only)

    def to_doc(self) -> dict:
        return {"t_ms": round(self.t_ms, 3), "phase": self.phase,
                "op": self.op, "scene": self.scene, "n": self.n}

    @classmethod
    def from_doc(cls, doc: dict) -> "TraceEvent":
        try:
            return cls(t_ms=float(doc["t_ms"]), phase=str(doc["phase"]),
                       op=str(doc["op"]), scene=str(doc["scene"]),
                       n=int(doc.get("n", 10)))
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed trace event {doc!r}: {exc}")


@dataclass(frozen=True)
class TracePhase:
    """One phase of the plan: how its events are issued."""

    name: str
    mode: str                       # "open" (timestamped) | "closed" (workers)
    workers: int = 1                # closed-loop concurrency
    chaos_eligible: bool = False    # chaos kills may land in this phase

    def to_doc(self) -> dict:
        return {"name": self.name, "mode": self.mode,
                "workers": self.workers,
                "chaos_eligible": self.chaos_eligible}

    @classmethod
    def from_doc(cls, doc: dict) -> "TracePhase":
        try:
            phase = cls(name=str(doc["name"]), mode=str(doc["mode"]),
                        workers=int(doc.get("workers", 1)),
                        chaos_eligible=bool(doc.get("chaos_eligible",
                                                    False)))
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed trace phase {doc!r}: {exc}")
        if phase.mode not in ("open", "closed"):
            raise TraceError(f"phase {phase.name}: mode must be "
                             f"open|closed, got {phase.mode!r}")
        return phase


@dataclass(frozen=True)
class TraceSpec:
    """Generator knobs.  Everything lands in the trace (and the report),
    so a committed ``BENCH_serve.json`` names the workload exactly."""

    seed: int = 2013
    #: Distinct tenant scenes in the base population.
    scenes: int = 18
    #: The hot working set (primed, burst-targeted, recovery-swept).
    hot_scenes: int = 6
    zipf_exponent: float = 1.1
    steady_rate_hz: float = 25.0
    steady_duration_s: float = 6.0
    #: Probability that a steady arrival is a churn action (fresh tenant
    #: scene registered cold / an old churn scene released) rather than
    #: a completion.
    churn_probability: float = 0.08
    burst_rate_hz: float = 80.0
    burst_base_hz: float = 15.0
    burst_period_s: float = 1.5
    burst_fraction: float = 0.4
    burst_duration_s: float = 3.0
    recovery_passes: int = 1
    #: Snippet counts completions draw from (weighted towards the
    #: protocol default).
    n_choices: Tuple[int, ...] = (10, 10, 5, 3)
    profile: str = "ci"

    def to_doc(self) -> dict:
        doc = {
            "seed": self.seed, "scenes": self.scenes,
            "hot_scenes": self.hot_scenes,
            "zipf_exponent": self.zipf_exponent,
            "steady_rate_hz": self.steady_rate_hz,
            "steady_duration_s": self.steady_duration_s,
            "churn_probability": self.churn_probability,
            "burst_rate_hz": self.burst_rate_hz,
            "burst_base_hz": self.burst_base_hz,
            "burst_period_s": self.burst_period_s,
            "burst_fraction": self.burst_fraction,
            "burst_duration_s": self.burst_duration_s,
            "recovery_passes": self.recovery_passes,
            "n_choices": list(self.n_choices),
            "profile": self.profile,
        }
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "TraceSpec":
        try:
            return cls(
                seed=int(doc["seed"]), scenes=int(doc["scenes"]),
                hot_scenes=int(doc["hot_scenes"]),
                zipf_exponent=float(doc["zipf_exponent"]),
                steady_rate_hz=float(doc["steady_rate_hz"]),
                steady_duration_s=float(doc["steady_duration_s"]),
                churn_probability=float(doc["churn_probability"]),
                burst_rate_hz=float(doc["burst_rate_hz"]),
                burst_base_hz=float(doc["burst_base_hz"]),
                burst_period_s=float(doc["burst_period_s"]),
                burst_fraction=float(doc["burst_fraction"]),
                burst_duration_s=float(doc["burst_duration_s"]),
                recovery_passes=int(doc.get("recovery_passes", 1)),
                n_choices=tuple(int(n) for n in doc["n_choices"]),
                profile=str(doc.get("profile", "ci")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed trace spec: {exc}")


#: Scaled presets; ``repro loadgen --profile`` names one of these.
PROFILES: Dict[str, TraceSpec] = {
    # A seconds-long end-to-end check (tier-1 self-test scale).
    "smoke": TraceSpec(scenes=6, hot_scenes=3, steady_rate_hz=12.0,
                       steady_duration_s=2.0, burst_rate_hz=30.0,
                       burst_base_hz=8.0, burst_duration_s=1.5,
                       churn_probability=0.1, profile="smoke"),
    # The committed BENCH_serve.json workload.
    "ci": TraceSpec(profile="ci"),
    # A heavier soak for manual runs.
    "soak": TraceSpec(scenes=48, hot_scenes=12, steady_rate_hz=60.0,
                      steady_duration_s=20.0, burst_rate_hz=200.0,
                      burst_base_hz=30.0, burst_duration_s=8.0,
                      profile="soak"),
}


@dataclass
class Trace:
    """A generated (or loaded) workload, ready to replay."""

    spec: TraceSpec
    scenes: Dict[str, dict]         # key -> {"name": ..., "text": ...}
    phases: List[TracePhase]
    events: List[TraceEvent]
    generator: str = TRACE_SCHEMA

    # -- canonical serialisation --------------------------------------------

    def to_doc(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "spec": self.spec.to_doc(),
            "scenes": {key: dict(value)
                       for key, value in sorted(self.scenes.items())},
            "phases": [phase.to_doc() for phase in self.phases],
            "events": [event.to_doc() for event in self.events],
        }

    def to_json(self) -> str:
        """Canonical JSON — byte-identical for identical content."""
        return json.dumps(self.to_doc(), indent=1, sort_keys=True) + "\n"

    @classmethod
    def from_doc(cls, doc: dict) -> "Trace":
        if not isinstance(doc, dict) or doc.get("schema") != TRACE_SCHEMA:
            raise TraceError(
                f"not a {TRACE_SCHEMA} document "
                f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})")
        scenes = doc.get("scenes")
        if not isinstance(scenes, dict) or not scenes:
            raise TraceError("trace has no scenes")
        for key, value in scenes.items():
            if not isinstance(value, dict) or \
                    not isinstance(value.get("text"), str):
                raise TraceError(f"scene {key!r} has no text")
        trace = cls(
            spec=TraceSpec.from_doc(doc.get("spec", {})),
            scenes={str(key): dict(value)
                    for key, value in scenes.items()},
            phases=[TracePhase.from_doc(phase)
                    for phase in doc.get("phases", [])],
            events=[TraceEvent.from_doc(event)
                    for event in doc.get("events", [])],
        )
        known = set(trace.scenes)
        for event in trace.events:
            if event.scene not in known:
                raise TraceError(
                    f"event references unknown scene {event.scene!r}")
        return trace

    def phase(self, name: str) -> TracePhase:
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise TraceError(f"trace has no phase {name!r}")

    def events_for(self, name: str) -> List[TraceEvent]:
        return [event for event in self.events if event.phase == name]

    def __len__(self) -> int:
        return len(self.events)


def trace_digest(trace: Trace) -> str:
    """SHA-256 over the canonical JSON — the identity the report carries."""
    return hashlib.sha256(trace.to_json().encode("utf-8")).hexdigest()


def write_trace(trace: Trace, path: str) -> None:
    Path(path).write_text(trace.to_json(), encoding="utf-8")


def load_trace(path: str) -> Trace:
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceError(f"cannot load trace {path}: {exc}")
    return Trace.from_doc(doc)


# -- generation ---------------------------------------------------------------


def _base_scene_texts(scenes_dir: Optional[Path] = None
                      ) -> List[Tuple[str, str]]:
    directory = scenes_dir or DEFAULT_SCENES_DIR
    paths = sorted(directory.glob("*.ins"))
    if not paths:
        raise TraceError(f"no .ins scenes under {directory}")
    return [(path.stem, path.read_text(encoding="utf-8"))
            for path in paths]


def _tenant_scene(base_name: str, base_text: str, tenant: str,
                  variant: int) -> dict:
    """A tenant's copy of a base scene: identical synthesis work, but a
    distinct text and therefore a distinct content-addressed scene id —
    which is what makes per-tenant registration, eviction, and journal
    churn real rather than simulated."""
    text = (f"{base_text.rstrip()}\n"
            f"# tenant: {tenant} (variant {variant})\n")
    return {"name": f"{base_name}@{tenant}#{variant}", "text": text}


def generate_trace(spec: TraceSpec,
                   scenes_dir: Optional[Path] = None) -> Trace:
    """Deterministically expand *spec* into a full event timeline."""
    if spec.hot_scenes < 1 or spec.scenes < spec.hot_scenes:
        raise TraceError(
            f"need scenes >= hot_scenes >= 1, got scenes={spec.scenes} "
            f"hot_scenes={spec.hot_scenes}")
    rng = random.Random(spec.seed)
    bases = _base_scene_texts(scenes_dir)
    tenants = [project.name.replace(" ", "_")
               for project in all_projects()]

    # Base population: scene keys s000.. in popularity-rank order.
    scenes: Dict[str, dict] = {}
    keys: List[str] = []
    for index in range(spec.scenes):
        base_name, base_text = bases[index % len(bases)]
        tenant = tenants[index % len(tenants)]
        key = f"s{index:03d}"
        scenes[key] = _tenant_scene(base_name, base_text, tenant, index)
        keys.append(key)
    hot_keys = keys[:spec.hot_scenes]

    popularity = ZipfSampler(spec.scenes, spec.zipf_exponent)
    hot_popularity = ZipfSampler(spec.hot_scenes, spec.zipf_exponent)
    events: List[TraceEvent] = []

    def pick_n() -> int:
        return spec.n_choices[rng.randrange(len(spec.n_choices))]

    # Phase 1 — prime: register the whole base population, then complete
    # every hot scene twice (one cold synthesis, one warm hit), closed
    # loop so the topology is warm before the clock matters.
    for key in keys:
        events.append(TraceEvent(0.0, PHASE_PRIME, "register", key))
    for key in hot_keys:
        events.append(TraceEvent(0.0, PHASE_PRIME, "complete", key,
                                 n=spec.n_choices[0]))
    for key in hot_keys:
        events.append(TraceEvent(0.0, PHASE_PRIME, "complete", key,
                                 n=spec.n_choices[0]))

    # Phase 2 — steady: open-loop Poisson traffic, Zipf scene choice,
    # churn arrivals interleaved.
    churn_counter = 0
    live_churn: List[str] = []
    for t in poisson_arrivals(spec.steady_rate_hz, spec.steady_duration_s,
                              rng):
        t_ms = t * 1000.0
        if rng.random() < spec.churn_probability:
            if live_churn and rng.random() < 0.5:
                # Retire an old tenant scene: journal tombstone + LRU slot
                # back.
                events.append(TraceEvent(t_ms, PHASE_STEADY, "release",
                                         live_churn.pop(0)))
            else:
                base_name, base_text = bases[churn_counter % len(bases)]
                tenant = tenants[(spec.scenes + churn_counter)
                                 % len(tenants)]
                key = f"c{churn_counter:03d}"
                scenes[key] = _tenant_scene(base_name, base_text, tenant,
                                            spec.scenes + churn_counter)
                churn_counter += 1
                live_churn.append(key)
                events.append(TraceEvent(t_ms, PHASE_STEADY, "register",
                                         key))
                events.append(TraceEvent(t_ms, PHASE_STEADY, "complete",
                                         key, n=pick_n()))
        else:
            rank = popularity.sample(rng)
            events.append(TraceEvent(t_ms, PHASE_STEADY, "complete",
                                     keys[rank], n=pick_n()))

    # Phase 3 — burst: modulated Poisson over the hot set only; chaos
    # kills land here.
    for t in bursty_arrivals(spec.burst_base_hz, spec.burst_rate_hz,
                             spec.burst_period_s, spec.burst_fraction,
                             spec.burst_duration_s, rng):
        rank = hot_popularity.sample(rng)
        events.append(TraceEvent(t * 1000.0, PHASE_BURST, "complete",
                                 hot_keys[rank], n=spec.n_choices[0]))

    # Phase 4 — recovery: sweep the hot set; post-chaos these must be
    # warm (snapshot restore + journal replay).
    for _ in range(max(1, spec.recovery_passes)):
        for key in hot_keys:
            events.append(TraceEvent(0.0, PHASE_RECOVERY, "complete", key,
                                     n=spec.n_choices[0]))

    phases = [
        TracePhase(PHASE_PRIME, "closed", workers=4),
        TracePhase(PHASE_STEADY, "open"),
        TracePhase(PHASE_BURST, "open", chaos_eligible=True),
        TracePhase(PHASE_RECOVERY, "closed", workers=2),
    ]
    return Trace(spec=spec, scenes=scenes, phases=phases, events=events)
