"""Corpus generation and frequency mining (paper §7.3, Table 3).

The paper mines symbol-usage statistics from 18 open-source Scala/Java
projects plus the Scala standard library: 7,516 distinct declarations,
90,422 uses in total, 98 % of declarations under 100 uses, and a maximum of
5,162 uses (the ``&&`` operator).  Those statistics feed the Table 1
imported-symbol weight ``215 + 785/(1 + f(x))``.

Offline we cannot crawl the projects, so this package substitutes a
synthetic corpus with the same published marginals:

* :mod:`repro.corpus.projects` — the Table 3 project registry;
* :mod:`repro.corpus.synthetic` — a Zipf-calibrated generator producing,
  per project, a stream of symbol-usage events whose aggregate matches the
  §7.3 numbers, with the hand-modelled JDK symbols occupying the popular
  ranks;
* :mod:`repro.corpus.mining` — the miner that counts events back into a
  frequency table (the part that would ingest real project sources);
* :mod:`repro.corpus.stats` — :class:`FrequencyTable` and its summary
  statistics.
"""

from repro.corpus.mining import mine_frequencies
from repro.corpus.projects import CORPUS_PROJECTS, CorpusProject
from repro.corpus.stats import CorpusSummary, FrequencyTable
from repro.corpus.synthetic import (PAPER_DISTINCT_DECLARATIONS,
                                    PAPER_MAX_USES, PAPER_TOTAL_USES,
                                    SyntheticCorpus, default_corpus,
                                    default_frequencies)

__all__ = [
    "CORPUS_PROJECTS", "CorpusProject",
    "CorpusSummary", "FrequencyTable",
    "SyntheticCorpus", "default_corpus", "default_frequencies",
    "mine_frequencies",
    "PAPER_DISTINCT_DECLARATIONS", "PAPER_TOTAL_USES", "PAPER_MAX_USES",
]
