"""The Table 3 corpus projects.

Eighteen Scala/Java open-source projects, names and descriptions verbatim
from the paper, plus the Scala standard library the text mentions
separately.  The synthetic corpus distributes usage events across these
projects so the mining pipeline exercises a realistic multi-project shape.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CorpusProject:
    """One corpus project: name, description, relative activity weight."""

    name: str
    description: str
    #: Relative share of usage events attributed to this project (the
    #: compiler and standard library dominate real corpora).
    activity: float = 1.0


CORPUS_PROJECTS: tuple[CorpusProject, ...] = (
    CorpusProject("Akka", "Transactional actors", 2.0),
    CorpusProject("CCSTM", "Software transactional memory", 1.0),
    CorpusProject("GooChaSca", "Google Charts API for Scala", 0.5),
    CorpusProject("Kestrel", "Tiny queue system based on starling", 0.7),
    CorpusProject("LiftWeb", "Web framework", 2.5),
    CorpusProject("LiftTicket", "Issue ticket system", 0.6),
    CorpusProject("O/R Broker",
                  "JDBC framework with support for externalized SQL", 0.8),
    CorpusProject("scala0.orm", "O/R mapping tool", 0.6),
    CorpusProject("ScalaCheck", "Unit test automation", 1.2),
    CorpusProject("Scala compiler",
                  "Compiles Scala source to Java bytecode", 4.0),
    CorpusProject("Scala Migrations", "Database migrations", 0.6),
    CorpusProject("ScalaNLP", "Natural language processing", 1.3),
    CorpusProject("ScalaQuery", "Typesafe database query API", 1.0),
    CorpusProject("Scalaz", '"Scala on steroidz" - scala extensions', 1.5),
    CorpusProject("simpledb-scala-binding",
                  "Bindings for Amazon's SimpleDB", 0.5),
    CorpusProject("smr", "Map Reduce implementation", 0.5),
    CorpusProject("Specs", "Behaviour Driven Development framework", 1.4),
    CorpusProject("Talking Puffin", "Twitter client", 0.8),
)

#: The Scala standard library, analysed in addition to Table 3 (§7.3).
SCALA_LIBRARY = CorpusProject(
    "Scala standard library", "Wrappers around Java API calls", 3.0)


def all_projects() -> tuple[CorpusProject, ...]:
    """Table 3 projects plus the Scala standard library."""
    return CORPUS_PROJECTS + (SCALA_LIBRARY,)
