"""Mining usage frequencies from project event streams (§7.3).

The paper extracts declaration-use counts from project sources; here the
"sources" are per-project streams of symbol-reference events (produced by
:mod:`repro.corpus.synthetic`, or by any other front end that can emit
symbol references).  The miner counts per project and merges, exactly the
aggregation the paper describes — only API symbols are retained when a
filter is given, mirroring the paper's "we extracted the relevant
information only about Java and Scala APIs".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional

from repro.core.errors import CorpusError
from repro.corpus.stats import FrequencyTable

SymbolFilter = Callable[[str], bool]


def mine_project(events: Iterable[str],
                 keep: Optional[SymbolFilter] = None) -> FrequencyTable:
    """Count symbol references in one project's event stream."""
    counts: dict[str, int] = {}
    for symbol in events:
        if keep is not None and not keep(symbol):
            continue
        counts[symbol] = counts.get(symbol, 0) + 1
    return FrequencyTable(counts)


def mine_frequencies(events_by_project: Mapping[str, Iterable[str]],
                     keep: Optional[SymbolFilter] = None) -> FrequencyTable:
    """Mine every project and merge the per-project tables."""
    merged = FrequencyTable({})
    for project in sorted(events_by_project):
        merged = merged.merged(mine_project(events_by_project[project], keep))
    return merged


def api_only(prefixes: Iterable[str]) -> SymbolFilter:
    """A filter keeping only symbols under the given package prefixes."""
    prefixes = tuple(prefixes)

    def keep(symbol: str) -> bool:
        return symbol.startswith(prefixes)

    return keep


# ---------------------------------------------------------------------------
# Per-project weight tables (the ranking pipeline's project stage)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ProjectWeightTables:
    """Per-project frequency tables with a merged-global fallback.

    The global table is what proof search already consumes through the
    base weights; the per-project tables feed the *post-reconstruction*
    ranking stage (``repro.core.ranking.ProjectFrequencyWeigher``), so a
    scene attributed to ``projA`` is re-ranked by what ``projA`` calls,
    and a scene belonging to no mined project falls back to the merged
    global table.  Selection is by scene name: the project whose name
    equals the scene name, or prefixes it at a ``/`` or ``:`` boundary.
    """

    projects: Mapping[str, FrequencyTable] = field(default_factory=dict)
    global_table: FrequencyTable = field(
        default_factory=lambda: FrequencyTable({}))

    def project_names(self) -> list[str]:
        return sorted(self.projects)

    def for_project(self, project: Optional[str]) -> FrequencyTable:
        """The named project's table, or the global fallback."""
        if project is None:
            return self.global_table
        return self.projects.get(project, self.global_table)

    def project_for_scene(self, scene_name: Optional[str]) -> Optional[str]:
        """Attribute a scene to a mined project by name, longest match."""
        if not scene_name:
            return None
        best: Optional[str] = None
        for project in self.projects:
            if scene_name == project or \
                    scene_name.startswith(project + "/") or \
                    scene_name.startswith(project + ":"):
                if best is None or len(project) > len(best):
                    best = project
        return best

    def for_scene(self, scene_name: Optional[str]) -> FrequencyTable:
        """The table the ranking stage should use for *scene_name*."""
        return self.for_project(self.project_for_scene(scene_name))

    # -- serialization (the `repro serve --project-weights` wire form) ------

    def to_doc(self) -> dict:
        return {
            "version": 1,
            "projects": {project: table.as_mapping()
                         for project, table in sorted(self.projects.items())},
            "global": self.global_table.as_mapping(),
        }

    @classmethod
    def from_doc(cls, doc: object) -> "ProjectWeightTables":
        if not isinstance(doc, dict):
            raise CorpusError("project weights document must be an object")
        version = doc.get("version", 1)
        if version != 1:
            raise CorpusError(
                f"unsupported project weights version: {version!r}")
        raw_projects = doc.get("projects", {})
        if not isinstance(raw_projects, dict):
            raise CorpusError("project weights 'projects' must be an object")
        projects = {}
        for project, counts in raw_projects.items():
            if not isinstance(counts, dict):
                raise CorpusError(
                    f"project {project!r} counts must be an object")
            projects[project] = FrequencyTable(counts)
        raw_global = doc.get("global")
        if raw_global is None:
            merged = FrequencyTable({})
            for project in sorted(projects):
                merged = merged.merged(projects[project])
            global_table = merged
        elif isinstance(raw_global, dict):
            global_table = FrequencyTable(raw_global)
        else:
            raise CorpusError("project weights 'global' must be an object")
        return cls(projects=projects, global_table=global_table)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_doc(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ProjectWeightTables":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CorpusError(
                f"cannot read project weights from {path}: {exc}") from exc
        return cls.from_doc(doc)


def mine_project_tables(events_by_project: Mapping[str, Iterable[str]],
                        keep: Optional[SymbolFilter] = None,
                        ) -> ProjectWeightTables:
    """Mine each project separately, keeping the merged-global fallback.

    The merged global equals :func:`mine_frequencies` over the same
    streams, so the two entry points stay consistent by construction.
    """
    projects = {project: mine_project(events_by_project[project], keep)
                for project in sorted(events_by_project)}
    merged = FrequencyTable({})
    for project in sorted(projects):
        merged = merged.merged(projects[project])
    return ProjectWeightTables(projects=projects, global_table=merged)
