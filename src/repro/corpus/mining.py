"""Mining usage frequencies from project event streams (§7.3).

The paper extracts declaration-use counts from project sources; here the
"sources" are per-project streams of symbol-reference events (produced by
:mod:`repro.corpus.synthetic`, or by any other front end that can emit
symbol references).  The miner counts per project and merges, exactly the
aggregation the paper describes — only API symbols are retained when a
filter is given, mirroring the paper's "we extracted the relevant
information only about Java and Scala APIs".
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional

from repro.corpus.stats import FrequencyTable

SymbolFilter = Callable[[str], bool]


def mine_project(events: Iterable[str],
                 keep: Optional[SymbolFilter] = None) -> FrequencyTable:
    """Count symbol references in one project's event stream."""
    counts: dict[str, int] = {}
    for symbol in events:
        if keep is not None and not keep(symbol):
            continue
        counts[symbol] = counts.get(symbol, 0) + 1
    return FrequencyTable(counts)


def mine_frequencies(events_by_project: Mapping[str, Iterable[str]],
                     keep: Optional[SymbolFilter] = None) -> FrequencyTable:
    """Mine every project and merge the per-project tables."""
    merged = FrequencyTable({})
    for project in sorted(events_by_project):
        merged = merged.merged(mine_project(events_by_project[project], keep))
    return merged


def api_only(prefixes: Iterable[str]) -> SymbolFilter:
    """A filter keeping only symbols under the given package prefixes."""
    prefixes = tuple(prefixes)

    def keep(symbol: str) -> bool:
        return symbol.startswith(prefixes)

    return keep
