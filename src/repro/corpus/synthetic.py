"""Synthetic corpus generation calibrated to the §7.3 marginals.

The real corpus statistics the paper reports:

* 7,516 distinct declarations used,
* 90,422 total uses,
* maximum single-symbol count 5,162 (the ``&&`` operator),
* 98 % of declarations have fewer than 100 uses.

We reproduce that profile with a truncated Zipf distribution: counts
``c_i = max(1, round(M / (i + 1)^a))`` over ranks ``i = 0..N-1`` with
``M = 5162`` pinned and the exponent ``a`` solved numerically so the total
lands on 90,422.  Hand-modelled JDK symbols that real Scala/Java code uses
constantly (``println``, ``FileInputStream.new``, collection methods, ...)
are placed on the popular ranks, followed by every other modelled member,
followed by generated Scala-flavoured names to fill out the 7,516.

The generator can also *materialise* the corpus as per-project usage-event
streams (`events_by_project`), which is what the miner in
:mod:`repro.corpus.mining` consumes — keeping the mining pipeline honest:
frequencies used by the synthesizer are counted from events, not copied
from the calibration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.errors import CorpusError
from repro.corpus.projects import CorpusProject, all_projects
from repro.corpus.stats import FrequencyTable

#: Published marginals (§7.3).
PAPER_DISTINCT_DECLARATIONS = 7516
PAPER_TOTAL_USES = 90422
PAPER_MAX_USES = 5162
PAPER_MOST_USED = "scala.Boolean.&&"

#: JDK / Scala symbols that plausibly dominate a Scala+Java corpus, in
#: descending popularity.  The very top spot is the paper's ``&&``.
POPULAR_SYMBOLS: tuple[str, ...] = (
    "scala.Boolean.&&",
    "scala.Boolean.||",
    "scala.Any.==",
    "java.lang.String.length",
    "java.io.PrintStream.println",
    "scala.Option.map",
    "scala.collection.List.map",
    "java.lang.StringBuilder.append",
    "scala.collection.List.foreach",
    "java.lang.Object.toString",
    "scala.Option.getOrElse",
    "java.lang.String.substring",
    "scala.collection.List.filter",
    "java.util.ArrayList.new",
    "java.lang.Object.equals",
    "java.io.File.new",
    "scala.collection.Map.get",
    "java.lang.String.trim",
    "java.awt.Container.getLayout",
    "java.io.FileInputStream.new",
    "java.io.BufferedReader.new",
    "java.lang.Integer.parseInt",
    "java.io.BufferedWriter.new",
    "java.io.InputStreamReader.new",
    "java.io.FileReader.new",
    "java.io.BufferedReader.readLine",
    "java.io.FileOutputStream.new",
    "java.io.FileWriter.new",
    "java.io.BufferedInputStream.new",
    "java.io.PrintWriter.new",
    "java.io.BufferedOutputStream.new",
    "java.util.HashMap.new",
    "java.io.DataInputStream.new",
    "java.io.DataOutputStream.new",
    "java.net.URL.new",
    "java.io.PrintStream.new",
    "java.io.ObjectInputStream.new",
    "java.io.ObjectOutputStream.new",
    "java.io.StringReader.new",
    "javax.swing.JButton.new",
    "javax.swing.JLabel.new",
    "javax.swing.JPanel.new",
    "java.net.Socket.new",
    "java.net.ServerSocket.new",
    "javax.swing.JFrame.new",
    "java.io.SequenceInputStream.new",
    "java.io.LineNumberReader.new",
    "java.awt.Point.new",
    "javax.swing.JTextArea.new",
    "javax.swing.JCheckBox.new",
    "javax.swing.Timer.new",
    "javax.swing.ImageIcon.new",
    "java.net.DatagramSocket.new",
    "java.io.StreamTokenizer.new",
    "javax.swing.JToggleButton.new",
    "java.awt.GridBagLayout.new",
    "java.awt.GridBagConstraints.new",
    "javax.swing.JTable.new",
    "javax.swing.JTree.new",
    "java.io.FileInputStream.new#overload2",
)

#: Symbols pinned to the deepest corpus ranks (1-2 uses).  These are
#: constructors that real code almost never calls directly (in-memory sinks
#: and pipe endpoints); letting the tail shuffle occasionally place them on
#: a mid-frequency rank would make snippets like
#: ``new PrintWriter(new CharArrayWriter())`` spuriously cheap.
RARE_SYMBOLS: tuple[str, ...] = (
    "java.io.ByteArrayOutputStream.new",
    "java.io.StringWriter.new",
    "java.io.CharArrayWriter.new",
    "java.io.CharArrayReader.new",
    "java.io.PipedWriter.new",
    "java.io.PipedReader.new",
    "java.io.PipedOutputStream.new",
    "java.io.PipedInputStream.new",
    "java.io.FilterWriter.new",
    "java.io.StringBuffer.new",
)

_SCALA_NAME_STEMS = [
    "scala.collection.Seq", "scala.collection.Iterator", "scala.Option",
    "scala.util.Either", "scala.concurrent.Future", "akka.actor.Actor",
    "net.liftweb.http.S", "org.scalacheck.Gen", "scalaz.Functor",
    "scala.tools.nsc.Global", "org.specs.Specification",
    "com.twitter.kestrel.Queue", "scala.xml.Node", "scala.io.Source",
]
_MEMBER_STEMS = ["apply", "map", "flatMap", "filter", "fold", "headOption",
                 "toList", "mkString", "collect", "zip", "exists", "find",
                 "reduce", "take", "drop", "indexOf", "contains", "reverse"]


@dataclass(frozen=True)
class CalibratedRank:
    """One symbol with its calibrated corpus count."""

    symbol: str
    count: int


def _zipf_counts(distinct: int, total: int, peak: int) -> list[int]:
    """Counts ``max(1, round(peak / (i+1)^a))`` with ``a`` solved for total."""

    def total_for(exponent: float) -> int:
        return sum(max(1, round(peak / (rank + 1) ** exponent))
                   for rank in range(distinct))

    low, high = 0.3, 3.0
    for _ in range(60):
        mid = (low + high) / 2
        if total_for(mid) > total:
            low, high = mid, high
            low = mid
        else:
            high = mid
    # total_for is decreasing in the exponent; low/high bracket the target.
    for _ in range(60):
        mid = (low + high) / 2
        if total_for(mid) > total:
            low = mid
        else:
            high = mid
    exponent = (low + high) / 2
    counts = [max(1, round(peak / (rank + 1) ** exponent))
              for rank in range(distinct)]
    # Nudge the head so the grand total matches exactly (the tail is pinned
    # at 1 use each and must not change).
    difference = total - sum(counts)
    rank = 1  # never touch rank 0: the peak is a published number
    while difference != 0 and rank < distinct:
        adjustment = max(-counts[rank] + 1, difference) if difference < 0 \
            else difference
        step = max(1, abs(adjustment) // 97)
        step = min(step, abs(difference))
        if difference > 0:
            counts[rank] += step
            difference -= step
        else:
            reducible = counts[rank] - 1
            step = min(step, reducible)
            counts[rank] -= step
            difference += step
        rank = rank + 1 if rank + 1 < min(distinct, 2000) else 1
    if sum(counts) != total:
        raise CorpusError("failed to calibrate the synthetic corpus totals")
    return counts


class SyntheticCorpus:
    """A calibrated corpus with per-project usage-event streams."""

    def __init__(self, extra_symbols: Iterable[str] = (), seed: int = 2013,
                 distinct: int = PAPER_DISTINCT_DECLARATIONS,
                 total: int = PAPER_TOTAL_USES,
                 peak: int = PAPER_MAX_USES):
        self._rng = random.Random(seed)
        self._ranks = self._calibrate(list(extra_symbols), distinct, total,
                                      peak)

    # -- calibration -------------------------------------------------------------

    def _calibrate(self, extra_symbols: list[str], distinct: int, total: int,
                   peak: int) -> list[CalibratedRank]:
        head: list[str] = []
        seen: set[str] = set()
        for symbol in POPULAR_SYMBOLS:
            if symbol not in seen:
                seen.add(symbol)
                head.append(symbol)
        rare = [symbol for symbol in RARE_SYMBOLS if symbol not in seen]
        seen.update(rare)
        # Everything else — modelled API symbols and Scala filler — shares
        # the tail, shuffled so frequency does not follow registration order.
        tail: list[str] = []
        for symbol in extra_symbols:
            if symbol not in seen:
                seen.add(symbol)
                tail.append(symbol)
        index = 0
        while len(head) + len(tail) + len(rare) < distinct:
            stem = _SCALA_NAME_STEMS[index % len(_SCALA_NAME_STEMS)]
            member = _MEMBER_STEMS[(index // 7) % len(_MEMBER_STEMS)]
            candidate = f"{stem}.{member}{index}"
            if candidate not in seen:
                seen.add(candidate)
                tail.append(candidate)
            index += 1
        self._rng.shuffle(tail)
        symbols = (head + tail + rare)[:distinct]
        counts = _zipf_counts(distinct, total, peak)
        return [CalibratedRank(symbol, count)
                for symbol, count in zip(symbols, counts)]

    # -- views -------------------------------------------------------------------

    def calibrated_table(self) -> FrequencyTable:
        """The target frequency table (what mining should reproduce)."""
        return FrequencyTable({rank.symbol: rank.count
                               for rank in self._ranks})

    def events_by_project(self) -> dict[str, list[str]]:
        """Materialise usage events, split across the Table 3 projects.

        Every symbol's count is distributed over projects proportionally to
        project activity (with seeded randomness), so mining the streams and
        summing per-project tables reproduces the calibrated table exactly.
        """
        projects = all_projects()
        weights = [project.activity for project in projects]
        events: dict[str, list[str]] = {project.name: []
                                        for project in projects}
        for rank in self._ranks:
            homes = self._rng.choices(projects, weights=weights,
                                      k=rank.count)
            for project in homes:
                events[project.name].append(rank.symbol)
        for stream in events.values():
            self._rng.shuffle(stream)
        return events

    def __len__(self) -> int:
        return len(self._ranks)


#: The historical seeds behind the shared default corpus.  They are the
#: implicit ``seed=None`` of :func:`default_corpus`; every weight golden
#: and benchmark artefact in the repository was mined under them.
DEFAULT_SHUFFLE_SEED = 7516
DEFAULT_CORPUS_SEED = 2013


def default_corpus(model=None, seed: Optional[int] = None) -> SyntheticCorpus:
    """The standard corpus: JDK member symbols + Scala filler.

    When *model* (an :class:`~repro.javamodel.model.ApiModel`) is given, all
    its member symbols are guaranteed a rank — modelled API symbols then
    have nonzero ``f(x)`` just as real JDK symbols do in the paper's corpus.
    Symbols not on the curated popular list are spread over the whole tail
    by a seeded shuffle: real usage frequency does not follow alphabetical
    order, and clustering all modelled members near the head would make
    rarely-used constructors (``new CharArrayWriter()``) implausibly cheap.

    *seed* threads **every** stochastic path — the tail shuffle here and
    all of :class:`SyntheticCorpus`'s sampling (rank assignment, event
    homing, stream shuffles) — from one explicit value, so two corpora
    built from the same seed are identical event-for-event.  ``None``
    keeps the historical constants (:data:`DEFAULT_SHUFFLE_SEED`,
    :data:`DEFAULT_CORPUS_SEED`) so the shared
    :func:`default_frequencies` table, and everything mined from it,
    never shifts.
    """
    extra: list[str] = []
    if model is not None:
        extra = sorted({member.symbol for member in model.members()})
        shuffle_seed = DEFAULT_SHUFFLE_SEED if seed is None else seed
        random.Random(shuffle_seed).shuffle(extra)
    corpus_seed = DEFAULT_CORPUS_SEED if seed is None else seed
    return SyntheticCorpus(extra_symbols=extra, seed=corpus_seed)


_DEFAULT_TABLE: Optional[FrequencyTable] = None


def default_frequencies() -> FrequencyTable:
    """Memoised frequency table over the shared JDK model, mined from events."""
    global _DEFAULT_TABLE
    if _DEFAULT_TABLE is None:
        from repro.corpus.mining import mine_frequencies
        from repro.javamodel.jdk import shared_jdk

        corpus = default_corpus(shared_jdk())
        _DEFAULT_TABLE = mine_frequencies(corpus.events_by_project())
    return _DEFAULT_TABLE
