"""Frequency tables and corpus summary statistics (§7.3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.errors import CorpusError


@dataclass(frozen=True)
class CorpusSummary:
    """The aggregate numbers the paper reports for its corpus."""

    distinct_declarations: int
    total_uses: int
    max_uses: int
    most_used_symbol: str
    fraction_under_100: float

    def __str__(self) -> str:
        return (f"{self.distinct_declarations} declarations, "
                f"{self.total_uses} uses, max {self.max_uses} "
                f"({self.most_used_symbol}), "
                f"{self.fraction_under_100 * 100:.1f}% under 100 uses")


class FrequencyTable:
    """Immutable symbol -> use-count mapping with summary statistics."""

    def __init__(self, counts: Mapping[str, int]):
        for symbol, count in counts.items():
            if count < 0:
                raise CorpusError(f"negative count for {symbol!r}: {count}")
        self._counts = dict(counts)

    # -- queries ---------------------------------------------------------------

    def get(self, symbol: str, default: int = 0) -> int:
        """The paper's ``f(x)``: uses of *symbol* in the corpus."""
        return self._counts.get(symbol, default)

    def __getitem__(self, symbol: str) -> int:
        return self.get(symbol)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def as_mapping(self) -> dict[str, int]:
        return dict(self._counts)

    def symbols(self) -> list[str]:
        return list(self._counts)

    def total_uses(self) -> int:
        return sum(self._counts.values())

    def max_entry(self) -> tuple[str, int]:
        if not self._counts:
            raise CorpusError("empty frequency table")
        symbol = max(self._counts, key=lambda s: (self._counts[s], s))
        return symbol, self._counts[symbol]

    def fraction_below(self, threshold: int) -> float:
        if not self._counts:
            raise CorpusError("empty frequency table")
        below = sum(1 for count in self._counts.values() if count < threshold)
        return below / len(self._counts)

    def most_common(self, limit: int = 10) -> list[tuple[str, int]]:
        ordered = sorted(self._counts.items(),
                         key=lambda item: (-item[1], item[0]))
        return ordered[:limit]

    def summary(self) -> CorpusSummary:
        symbol, max_uses = self.max_entry()
        return CorpusSummary(
            distinct_declarations=len(self._counts),
            total_uses=self.total_uses(),
            max_uses=max_uses,
            most_used_symbol=symbol,
            fraction_under_100=self.fraction_below(100),
        )

    # -- combination -------------------------------------------------------------

    def merged(self, other: "FrequencyTable") -> "FrequencyTable":
        """Pointwise sum of two tables (combining project counts)."""
        combined = dict(self._counts)
        for symbol, count in other._counts.items():
            combined[symbol] = combined.get(symbol, 0) + count
        return FrequencyTable(combined)

    @staticmethod
    def from_counts(pairs: Iterable[tuple[str, int]]) -> "FrequencyTable":
        table: dict[str, int] = {}
        for symbol, count in pairs:
            table[symbol] = table.get(symbol, 0) + count
        return FrequencyTable(table)

    def __repr__(self) -> str:
        return f"FrequencyTable({len(self._counts)} symbols)"
