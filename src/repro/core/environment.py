"""Type environments and declarations (paper §3).

An :class:`Environment` is the paper's Gamma_o: a finite set of declarations
``name : tau``.  Each declaration additionally carries

* a :class:`DeclKind` — the "nature" from Table 1 (lambda binder, local,
  coercion, class member, package member, literal, imported) that determines
  its base weight;
* a usage ``frequency`` mined from the corpus (only meaningful for imported
  declarations);
* an optional :class:`RenderSpec` telling the snippet renderer whether the
  declaration is a constructor, an instance method, a field, ... so that the
  lambda term ``FileInputStream.new name`` prints as
  ``new FileInputStream(name)``.

Environments are immutable.  The reconstruction phase extends them with
fresh lambda binders; ``extended`` creates a chained child environment in
O(new declarations) so deep searches stay cheap.

The ``select`` method is the paper's ``Select(Gamma_o, t)`` from Fig. 4: all
declarations whose type's sigma image equals the requested succinct type.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.core.errors import EnvironmentError_
from repro.core.succinct import SuccinctType, sigma
from repro.core.types import Type


class DeclKind(enum.Enum):
    """The declaration natures of Table 1, ordered by preference."""

    LAMBDA = "lambda"
    LOCAL = "local"
    COERCION = "coercion"
    CLASS_MEMBER = "class"
    PACKAGE_MEMBER = "package"
    LITERAL = "literal"
    IMPORTED = "imported"


class RenderStyle(enum.Enum):
    """How a declaration head should be printed in a code snippet."""

    VALUE = "value"                  # plain identifier:        name
    CONSTRUCTOR = "constructor"      # new Simple(args...)
    METHOD = "method"                # receiver.name(args...)
    STATIC_METHOD = "static_method"  # Owner.name(args...)
    FIELD = "field"                  # receiver.name
    STATIC_FIELD = "static_field"    # Owner.name
    FUNCTION = "function"            # name(args...)
    LITERAL = "literal"              # verbatim text
    COERCION = "coercion"            # invisible: renders as its argument


@dataclass(frozen=True)
class RenderSpec:
    """Rendering metadata for a declaration head."""

    style: RenderStyle = RenderStyle.VALUE
    display: str = ""

    def display_or(self, fallback: str) -> str:
        return self.display or fallback


@dataclass(frozen=True)
class Declaration:
    """A typed declaration ``name : type`` with ranking metadata."""

    name: str
    type: Type
    kind: DeclKind = DeclKind.LOCAL
    frequency: int = 0
    render: Optional[RenderSpec] = None

    @property
    def succinct_type(self) -> SuccinctType:
        return sigma(self.type)

    @property
    def is_coercion(self) -> bool:
        return self.kind is DeclKind.COERCION

    @property
    def fingerprint_bytes(self) -> bytes:
        """This declaration's contribution to an environment fingerprint.

        Cached on the instance: declarations are immutable and shared
        across every environment that contains them, so the type
        formatting behind the digest is paid once per declaration, not
        once per fingerprinted environment — which is what makes
        re-fingerprinting a 10k-declaration scene after a one-line edit
        cheap.
        """
        cached = self.__dict__.get("_fingerprint_bytes")
        if cached is None:
            render = self.render
            cached = repr((
                self.name, str(self.type), self.kind.value, self.frequency,
                render.style.value if render is not None else None,
                render.display if render is not None else None,
            )).encode("utf-8") + b"\x00"
            object.__setattr__(self, "_fingerprint_bytes", cached)
        return cached

    def __str__(self) -> str:
        return f"{self.name} : {self.type}"


def declaration(name: str, tpe: Type, kind: DeclKind = DeclKind.LOCAL,
                frequency: int = 0,
                render: Optional[RenderSpec] = None) -> Declaration:
    """Convenience constructor mirroring :class:`Declaration`."""
    return Declaration(name, tpe, kind, frequency, render)


class Environment:
    """An immutable set of declarations with a ``Select`` index.

    Duplicate names are rejected: the paper's calculus identifies
    declarations by name, and synthesis introduces only fresh binder names.
    """

    def __init__(self, declarations: Iterable[Declaration] = (),
                 _parent: Optional["Environment"] = None):
        self._parent = _parent
        self._declarations: tuple[Declaration, ...] = tuple(declarations)
        self._by_name: dict[str, Declaration] = {}
        grouped: dict[SuccinctType, list[Declaration]] = {}
        for decl in self._declarations:
            if decl.name in self._by_name or (
                    _parent is not None and _parent.lookup(decl.name) is not None):
                raise EnvironmentError_(f"duplicate declaration name: {decl.name!r}")
            self._by_name[decl.name] = decl
            grouped.setdefault(decl.succinct_type, []).append(decl)
        # Stored as tuples so ``select`` returns them without a copy.
        self._by_succinct: dict[SuccinctType, tuple[Declaration, ...]] = {
            stype: tuple(decls) for stype, decls in grouped.items()}
        self._weight_memos: dict = {}  # WeightPolicy -> {SuccinctType: float}
        self._decl_weight_memos: dict = {}  # WeightPolicy -> {id(decl): float}
        self._recon_memos: dict = {}  # WeightPolicy -> candidate-list memo
        self._pattern_env_memo: dict = {}  # frozenset -> frozenset
        self._succinct_env: Optional[frozenset[SuccinctType]] = None
        self._reserved_names: Optional[frozenset[str]] = None
        self._fingerprint: Optional[str] = None
        self._arena = None  # lazily built EnvArena (see succinct_arena)

    # -- construction -------------------------------------------------------

    @staticmethod
    def of(*declarations: Declaration) -> "Environment":
        return Environment(declarations)

    def extended(self, declarations: Iterable[Declaration]) -> "Environment":
        """A child environment with *declarations* added (names must be new)."""
        return Environment(declarations, _parent=self)

    @classmethod
    def reindexed(cls, declarations: tuple[Declaration, ...],
                  by_name: dict, by_succinct: dict) -> "Environment":
        """A flat environment from pre-built index structures.

        The delta path's constructor: a one-declaration edit of a large
        scene should not regroup every declaration, so the caller (see
        :func:`repro.incremental.delta.apply_scene_delta`) maintains the
        name table and Select index incrementally and hands them over.
        The caller owns the invariants the normal constructor checks and
        derives: no duplicate names, and both indexes consistent with
        *declarations* in declaration order — the fingerprint/parity
        test-suite is the gate on that contract.
        """
        env = cls.__new__(cls)
        env._parent = None
        env._declarations = declarations
        env._by_name = by_name
        env._by_succinct = by_succinct
        env._weight_memos = {}
        env._decl_weight_memos = {}
        env._recon_memos = {}
        env._pattern_env_memo = {}
        env._succinct_env = None
        env._reserved_names = None
        env._fingerprint = None
        env._arena = None
        return env

    # -- queries -------------------------------------------------------------

    def lookup(self, name: str) -> Optional[Declaration]:
        """The declaration bound to *name*, or ``None``."""
        decl = self._by_name.get(name)
        if decl is not None:
            return decl
        if self._parent is not None:
            return self._parent.lookup(name)
        return None

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def select(self, stype: SuccinctType) -> tuple[Declaration, ...]:
        """All declarations whose sigma image is *stype* (Fig. 4's Select)."""
        local = self._by_succinct.get(stype, ())
        if self._parent is None:
            return local
        return self._parent.select(stype) + local

    def succinct_environment(self) -> frozenset[SuccinctType]:
        """sigma(Gamma_o): the set of succinct types of all declarations."""
        if self._succinct_env is None:
            own = frozenset(self._by_succinct)
            if self._parent is not None:
                own |= self._parent.succinct_environment()
            self._succinct_env = own
        return self._succinct_env

    def reserved_names(self) -> frozenset[str]:
        """All declaration names in scope, as one shared frozen set.

        Computed once per environment and cached: reconstruction needs the
        full protected-name set to seed its fresh-name supply, and a large
        scene has ~10k declarations — rebuilding the list per query used to
        cost more than many whole queries.  The set is immutable, so every
        :class:`~repro.core.names.NameSupply` over this environment shares
        it by reference (``frozen=``) instead of copying it.
        """
        if self._reserved_names is None:
            own = frozenset(self._by_name)
            if self._parent is not None:
                own |= self._parent.reserved_names()
            self._reserved_names = own
        return self._reserved_names

    def type_weight_memo(self, policy) -> dict:
        """The mutable ``succinct type -> w(t, Gamma_o)`` memo for *policy*.

        Request priorities (§5.6) are pure in (environment, policy), and
        environments are immutable, so the memo lives here: every fresh
        :class:`~repro.core.synthesizer.Synthesizer` over this environment
        starts with the weights earlier ones already computed.
        """
        memo = self._weight_memos.get(policy)
        if memo is None:
            memo = self._weight_memos.setdefault(policy, {})
        return memo

    def declaration_weight_memo(self, policy) -> dict:
        """The ``id(declaration) -> weight`` memo for *policy*.

        Keyed by identity: every declaration in scope is pinned by this
        environment for its whole lifetime, and reconstruction weighs
        thousands of them per query.  Like :meth:`type_weight_memo`, the
        values are pure in (environment, policy).
        """
        memo = self._decl_weight_memos.get(policy)
        if memo is None:
            memo = self._decl_weight_memos.setdefault(policy, {})
        return memo

    def candidate_list_memo(self, policy) -> dict:
        """Cross-query memo for reconstruction's root-scope candidate lists.

        Keyed by ``(hole simple-type id, pattern slice tuple)`` — the exact
        inputs a candidate list is a pure function of in the empty binder
        scope (plus this environment and *policy*, which select the memo).
        Values are ``(names_needed, candidates)``: a hit must still draw
        ``names_needed`` fresh binder names so the reconstructor's name
        supply stays in lockstep with a cold run (binder names drawn while
        building a list are consumed even though they never outlive it).
        Pattern slices compare pointer-fast on a warm scene arena because
        the environment frozensets inside patterns are shared instances.
        """
        memo = self._recon_memos.get(policy)
        if memo is None:
            memo = self._recon_memos.setdefault(policy, {})
        return memo

    def pattern_env_memo(self) -> dict:
        """``binder sigma set -> sigma(Gamma_o) | sigmas`` (cross-query).

        The union re-walks the full succinct signature (thousands of
        types), so it is memoised here — pure in (environment, sigma set)
        — rather than per reconstructor.
        """
        return self._pattern_env_memo

    def succinct_arena(self):
        """The scene-scoped :class:`~repro.core.space.EnvArena` for this
        environment, built lazily over ``sigma(Gamma_o)``.

        The arena carries the prover's STRIP transition memo and MATCH
        indexes from query to query, which is what makes warm per-query
        prover latency cheap.  An arena that has outgrown its bound is
        *replaced* here (never cleared in place), so any exploration that
        started on the old one keeps its consistent snapshot.
        """
        from repro.core.space import EnvArena  # deferred: keeps import DAG flat

        arena = self._arena
        if arena is None or arena.oversized():
            if arena is not None:
                arena.retire()
            arena = EnvArena(self.succinct_environment())
            self._arena = arena
        return arena

    def release_arena(self) -> None:
        """Drop the cached arena (engine scene release calls this).

        In-flight explorations keep their reference and finish on the old
        arena; the memory goes when the last of them does.
        """
        arena = self._arena
        if arena is not None:
            arena.retire()
            self._arena = None

    def adopt_prepared_state(self, donor: "Environment",
                             dirty_stypes: Iterable[SuccinctType]) -> None:
        """Inherit *donor*'s warm prover/weight state after a declaration
        delta (the incremental-scene re-prepare path).

        ``dirty_stypes`` must be the sigma images of every declaration the
        delta added or removed.  Three pieces of state transfer, each with
        an exactness argument:

        * **Arena.**  The arena is content-addressed (a cache, never a
          correctness requirement), so the whole object is shared: every
          STRIP transition and interned environment stays warm.  Our new
          root is interned with the donor's root as ``parent`` when it is
          a superset, so only the added members are merged into the MATCH
          index instead of re-sorting all of sigma(Gamma_o).
        * **Type-weight memos.**  ``w(t, Gamma_o)`` is the minimum
          declaration weight over ``select(t)``, and ``select(t)`` only
          sees declarations whose sigma image *is* ``t`` — so exactly the
          dirty types can change and everything else transfers verbatim.
        * **Declaration-weight memos.**  Keyed by ``id(decl)`` and pure in
          (kind, frequency, policy); entries transfer for declaration
          objects this environment still holds.  Donor-only ids are
          dropped (their objects may be freed and their ids reused).

        The reconstruction memos (candidate lists, pattern-environment
        unions) are deliberately *not* transplanted: candidate lists embed
        declaration references, and a list built before a removal could
        resurrect a deleted declaration — they re-warm per query instead.
        """
        dirty = frozenset(dirty_stypes)
        arena = donor._arena
        if arena is not None and not arena.oversized():
            old_root = arena.intern(donor.succinct_environment())
            new_root = self.succinct_environment()
            if new_root >= arena.members(old_root):
                arena.intern(new_root, parent=old_root)
            else:
                arena.intern(new_root)
            self._arena = arena
        live_ids = {id(decl) for decl in self.declarations()}
        for policy, memo in donor._weight_memos.items():
            kept = {stype: weight for stype, weight in memo.items()
                    if stype not in dirty}
            if kept:
                self._weight_memos.setdefault(policy, {}).update(kept)
        for policy, memo in donor._decl_weight_memos.items():
            kept = {decl_id: weight for decl_id, weight in memo.items()
                    if decl_id in live_ids}
            if kept:
                self._decl_weight_memos.setdefault(policy, {}).update(kept)

    def fingerprint(self) -> str:
        """A stable content hash of the environment (for result caching).

        Covers every declaration in scope order — name, type, kind,
        frequency and render metadata all participate, and so does the
        order itself, because tie-breaking among equal-weight candidates
        follows declaration order.  Child environments chain the parent's
        fingerprint, so extending stays O(new declarations).
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            if self._parent is not None:
                digest.update(self._parent.fingerprint().encode("ascii"))
            for decl in self._declarations:
                digest.update(decl.fingerprint_bytes)
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def declarations(self) -> Iterator[Declaration]:
        """All declarations, outermost scope first."""
        if self._parent is not None:
            yield from self._parent.declarations()
        yield from self._declarations

    def __iter__(self) -> Iterator[Declaration]:
        return self.declarations()

    def __len__(self) -> int:
        own = len(self._declarations)
        return own + (len(self._parent) if self._parent is not None else 0)

    def variable_types(self) -> dict[str, Type]:
        """A ``name -> type`` mapping (for the generic type checker)."""
        return {decl.name: decl.type for decl in self.declarations()}

    def __getstate__(self) -> dict:
        # The arena is process-local (it holds a lock and per-process type
        # ids), and the weight memos must not cross either: the
        # declaration-weight memo is keyed by raw id() addresses, which
        # mean nothing — and could silently collide — in another process.
        # Pool workers rebuild all three lazily.
        state = dict(self.__dict__)
        state["_arena"] = None
        state["_weight_memos"] = {}
        state["_decl_weight_memos"] = {}
        # The candidate-list memo keys on per-process simple-type ids and
        # holds per-process declaration references; never ship it.
        state["_recon_memos"] = {}
        state["_pattern_env_memo"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Unpickled instances from older payloads may predate the memos.
        self.__dict__.setdefault("_arena", None)
        self.__dict__.setdefault("_weight_memos", {})
        self.__dict__.setdefault("_decl_weight_memos", {})
        self.__dict__.setdefault("_recon_memos", {})
        self.__dict__.setdefault("_pattern_env_memo", {})
        self.__dict__.setdefault("_reserved_names", None)

    def __repr__(self) -> str:
        return f"Environment({len(self)} declarations)"
