"""Integer-ID arenas: succinct environments and simple types.

Exploration (§5.3) repeatedly extends environments with STRIP and asks
each one "which members return ``t``?".  Environments are frozensets of
thousands of :class:`~repro.core.succinct.SuccinctType`; manipulating
them structurally — hashing a whole set per request, re-sorting and
re-grouping every member for each distinct environment — dominates the
per-query prover cost once the serving layers (engine, server) have
amortised everything else.

:class:`EnvArena` interns environments as small integers and keeps three
memo structures per arena:

* ``env -> env_id`` — structural interning (one frozenset hash per
  *distinct* environment, ever);
* ``(env_id, stripped-type id) -> (result, env_id')`` — the STRIP
  transition memo: stripping the same type in the same environment is a
  dict hit, no set union;
* ``env_id -> {result -> sorted members}`` — the MATCH index, built
  *incrementally*: an extended environment merges only its added members
  into the parent's (already sorted) groups, never re-sorting the whole
  environment.

An arena is a cache, never a correctness requirement: every query it
answers is derivable from the structural data it stores, dropping it
merely costs re-interning.  Arenas grow append-only — ids handed out
stay valid for the arena's lifetime — which is what makes concurrent
readers (the async server synthesises on several executor threads) safe
without read locks: insertion takes a per-arena lock, published ids
always point at fully built rows, and "release" is *replacement* (the
holder forgets the arena object) rather than in-place clearing, so an
in-flight exploration keeps its consistent snapshot until it finishes.

This module also hosts the **simple-type id table** used by the
reconstruction hot path (:func:`simple_type_id`): every simple
:class:`~repro.core.types.Type` gets a stable per-process integer id, so
reconstruction's memo tables (candidate lists, completion-bound levels,
pattern-environment unions) key on small ints instead of re-hashing
structural type spines.  Ids follow the same discipline as the succinct
``type_id`` counter: assigned from a monotonic counter that never
resets, so "same id => same structure" can never be violated; the id is
additionally cached on the type instance itself (and excluded from
pickling — see ``Type.__getstate__``), making repeat lookups a plain
attribute read.
"""

from __future__ import annotations

import threading
import weakref
from typing import Iterable, Optional

from repro.core.succinct import SuccinctType, sort_key, type_id
from repro.core.types import Type

#: An environment in succinct space: just the set of member types.
EnvKey = frozenset  # frozenset[SuccinctType]

#: Default bound on interned environments per arena.  The request space of
#: one scene is finite (subterm-closure), but adversarial scenes could
#: push it far; past the bound the *next* `arena_for`-style accessor swaps
#: in a fresh arena (see `Environment.succinct_arena`).
DEFAULT_MAX_ENVS = 1 << 14

#: Live arenas, for aggregate statistics only.
_LIVE_ARENAS: "weakref.WeakSet[EnvArena]" = weakref.WeakSet()

#: Lifetime counters over arenas that have already been released/collected
#: (so `/v1/stats` totals do not shrink when a tenant is dropped).
_RETIRED = {"arenas": 0, "envs": 0, "transition_hits": 0,
            "transition_misses": 0, "index_merges": 0}
_RETIRED_LOCK = threading.Lock()


class EnvArena:
    """Intern table mapping succinct environments to dense integer ids."""

    def __init__(self, root: Optional[Iterable[SuccinctType]] = None,
                 max_envs: int = DEFAULT_MAX_ENVS):
        self._lock = threading.Lock()
        self._ids_by_key: dict[EnvKey, int] = {}
        self._members: list[EnvKey] = []
        self._indexes: list[dict[str, tuple[SuccinctType, ...]]] = []
        #: (env_id, type_id of the stripped type) -> (result, env_id').
        self._strips: dict[tuple[int, int], tuple[str, int]] = {}
        self.max_envs = max_envs
        self.transition_hits = 0
        self.transition_misses = 0
        self.index_merges = 0
        self._retired = False
        with _RETIRED_LOCK:                # adds vs. arena_stats snapshot
            _LIVE_ARENAS.add(self)
        if root is not None:
            self.intern(frozenset(root))

    # -- interning -----------------------------------------------------------

    def intern(self, members: EnvKey, parent: int = -1) -> int:
        """The id of *members*, interning (with index build) if new.

        ``parent`` is an optional id of an environment *members* extends;
        when given, the MATCH index is derived from the parent's by
        merging only the added members.
        """
        env_id = self._ids_by_key.get(members)
        if env_id is not None:
            return env_id
        with self._lock:
            env_id = self._ids_by_key.get(members)
            if env_id is not None:
                return env_id
            index = self._build_index(members, parent)
            self._members.append(members)
            self._indexes.append(index)
            env_id = len(self._members) - 1
            # Publish last: any thread that can see the id sees full rows.
            self._ids_by_key[members] = env_id
            return env_id

    def _build_index(self, members: EnvKey,
                     parent: int) -> dict[str, tuple[SuccinctType, ...]]:
        """``result -> members returning result``, sorted by `sort_key`.

        With a parent, only ``members - parent`` is sorted and merged into
        the parent's groups; concatenating two runs that are each already
        in `sort_key` order keeps every group exactly as a full re-sort
        would produce it (`sort_key` is a total structural order).
        """
        if parent < 0:
            grouped: dict[str, list[SuccinctType]] = {}
            for member in sorted(members, key=sort_key):
                grouped.setdefault(member.result, []).append(member)
            return {result: tuple(group)
                    for result, group in grouped.items()}
        self.index_merges += 1
        added: dict[str, list[SuccinctType]] = {}
        for member in sorted(members - self._members[parent], key=sort_key):
            added.setdefault(member.result, []).append(member)
        index = dict(self._indexes[parent])
        for result, group in added.items():
            existing = index.get(result)
            if existing is None:
                index[result] = tuple(group)
            else:
                index[result] = tuple(sorted(existing + tuple(group),
                                             key=sort_key))
        return index

    # -- the STRIP transition ------------------------------------------------

    def strip(self, target: SuccinctType, env_id: int) -> tuple[str, int]:
        """The STRIP rule over ids: ``(S -> t) ;Gamma ?  =>  t ;Gamma+S ?``.

        Returns ``(basic result name, id of the extended environment)``.
        """
        if not target.arguments:
            return target.result, env_id
        key = (env_id, type_id(target))
        memo = self._strips.get(key)
        if memo is not None:
            self.transition_hits += 1
            return memo
        self.transition_misses += 1
        members = self._members[env_id]
        if target.arguments <= members:
            extended = env_id
        else:
            extended = self.intern(members | target.arguments, parent=env_id)
        memo = (target.result, extended)
        self._strips[key] = memo
        return memo

    # -- queries -------------------------------------------------------------

    def members(self, env_id: int) -> EnvKey:
        """The environment behind *env_id*, as the original frozenset."""
        return self._members[env_id]

    def members_returning(self, env_id: int,
                          target: str) -> tuple[SuccinctType, ...]:
        """All members of *env_id* whose result type is *target* (MATCH)."""
        return self._indexes[env_id].get(target, ())

    def __len__(self) -> int:
        return len(self._members)

    def oversized(self) -> bool:
        """True once the arena should be replaced at the next boundary.

        Never acted on mid-exploration: a running search keeps using the
        arena it started with (append-only growth stays valid), and the
        holder swaps in a fresh arena before the *next* query.
        """
        return len(self._members) > self.max_envs

    def stats(self) -> dict:
        return {
            "env_count": len(self._members),
            "max_envs": self.max_envs,
            "transitions": len(self._strips),
            "transition_hits": self.transition_hits,
            "transition_misses": self.transition_misses,
            "index_merges": self.index_merges,
        }

    def retire(self) -> None:
        """Fold this arena's counters into the lifetime totals.

        Called when the holder releases the arena (engine scene release);
        the object itself stays usable for any in-flight exploration and
        is garbage-collected when the last reference drops.
        """
        if self._retired:
            return
        self._retired = True
        with _RETIRED_LOCK:
            _RETIRED["arenas"] += 1
            _RETIRED["envs"] += len(self._members)
            _RETIRED["transition_hits"] += self.transition_hits
            _RETIRED["transition_misses"] += self.transition_misses
            _RETIRED["index_merges"] += self.index_merges

    def __repr__(self) -> str:
        return (f"EnvArena({len(self._members)} envs, "
                f"{len(self._strips)} transitions)")


# -- simple-type ids ---------------------------------------------------------

#: Structural ``Type -> id`` table.  Only consulted when an instance does
#: not yet carry its cached id; after that, :func:`simple_type_id` is an
#: attribute read.  The table gives cross-instance consistency: two
#: structurally equal types always map to one id while both stay in the
#: table (and an instance keeps its cached id forever once assigned).
_SIMPLE_TYPE_IDS: dict[Type, int] = {}
_NEXT_SIMPLE_TYPE_ID = 0
_SIMPLE_TYPE_LOCK = threading.Lock()

#: Bound on the structural table, mirroring the succinct intern table's
#: discipline: past it the oldest entries are evicted on insert, so a
#: serving process fed unboundedly many distinct client goal types stays
#: bounded.  Instances keep their cached ids regardless (see the
#: eviction caveat on :func:`trim_simple_type_ids`).
DEFAULT_SIMPLE_TYPE_LIMIT = 1 << 17

#: Attribute the id is cached under on the type instance.  Excluded from
#: pickling (``BaseType.__getstate__`` / ``Arrow.__getstate__``): ids are
#: per-process, so a restored cache would be silently wrong — and could
#: silently collide — in the engine's pool workers.
_SIMPLE_TYPE_ID_ATTR = "_simple_type_id"


def simple_type_id(tpe: Type) -> int:
    """The stable per-process integer id of simple type *tpe*.

    Distinct structures never share an id (the counter is monotonic and
    never reset); structurally equal instances share one id via the
    structural table.  The id is cached on the instance, so the common
    case — reconstruction re-asking about the same declaration/uncurry
    type objects — is a single attribute read with no hashing at all.
    """
    global _NEXT_SIMPLE_TYPE_ID
    try:
        return object.__getattribute__(tpe, _SIMPLE_TYPE_ID_ATTR)
    except AttributeError:
        pass
    with _SIMPLE_TYPE_LOCK:
        assigned = _SIMPLE_TYPE_IDS.get(tpe)
        if assigned is None:
            assigned = _NEXT_SIMPLE_TYPE_ID
            _NEXT_SIMPLE_TYPE_ID += 1
            _SIMPLE_TYPE_IDS[tpe] = assigned
            while len(_SIMPLE_TYPE_IDS) > DEFAULT_SIMPLE_TYPE_LIMIT:
                del _SIMPLE_TYPE_IDS[next(iter(_SIMPLE_TYPE_IDS))]
    object.__setattr__(tpe, _SIMPLE_TYPE_ID_ATTR, assigned)
    return assigned


def simple_type_stats() -> dict:
    """Size and id high-water mark of the simple-type id table."""
    return {"size": len(_SIMPLE_TYPE_IDS),
            "ids_assigned": _NEXT_SIMPLE_TYPE_ID}


def trim_simple_type_ids(max_entries: int = 0) -> int:
    """Shed structural table entries down to *max_entries* (oldest first).

    Safe at any time: instances keep their cached ids (attribute cache),
    and a structurally equal *new* instance interned after a trim simply
    gets a fresh id — memo entries under the old id go cold, exactly the
    eviction contract of the succinct ``type_id`` table.  Engine tenancy
    boundaries call this so a dropped scene's types can be collected.

    Eviction caveat (shared with the succinct table): after a trim, a
    *fresh* instance of an evicted structure gets a new id while older
    instances keep their cached one, so id-keyed reconstruction memos
    treat the two as distinct and rebuild — which may draw extra fresh
    binder names.  Emitted term structure, weights and ranking are
    unaffected (the memos are pure), but binder-name choices across a
    trim boundary can differ from an untrimmed process.  Within one
    uninterrupted tenancy — the determinism contract the parity suite
    asserts — no trim occurs and results are bit-reproducible.
    """
    evicted = 0
    with _SIMPLE_TYPE_LOCK:
        while len(_SIMPLE_TYPE_IDS) > max_entries:
            oldest = next(iter(_SIMPLE_TYPE_IDS))
            del _SIMPLE_TYPE_IDS[oldest]
            evicted += 1
    return evicted


def arena_stats() -> dict:
    """Aggregate arena statistics: live arenas plus retired totals.

    The ``transition_memo_hits``-style counters are process-lifetime
    (live + retired), so serving dashboards see monotone rates; the
    ``env_count`` gauge covers live arenas only.
    """
    with _RETIRED_LOCK:
        # Snapshot under the same lock that guards registration: a WeakSet
        # mutated mid-iteration raises RuntimeError, and synthesis threads
        # create arenas while the serving loop reads stats.
        live = [arena for arena in _LIVE_ARENAS if not arena._retired]
        retired = dict(_RETIRED)
    return {
        "live_arenas": len(live),
        "env_count": sum(len(arena) for arena in live),
        "transition_memo_hits":
            retired["transition_hits"] + sum(a.transition_hits for a in live),
        "transition_memo_misses":
            retired["transition_misses"]
            + sum(a.transition_misses for a in live),
        "index_merges":
            retired["index_merges"] + sum(a.index_merges for a in live),
        "retired_arenas": retired["arenas"],
        "retired_envs": retired["envs"],
    }
