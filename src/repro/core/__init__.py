"""Core algorithms: succinct types, exploration, patterns, reconstruction.

This package implements the paper's primary contribution — complete,
weighted type inhabitation for the simply typed lambda calculus via succinct
types — behind the :class:`~repro.core.synthesizer.Synthesizer` facade.
"""

from repro.core.config import SynthesisConfig
from repro.core.environment import (Declaration, DeclKind, Environment,
                                    RenderSpec, RenderStyle, declaration)
from repro.core.errors import (BudgetExhaustedError, ReproError,
                               SynthesisError, TypeCheckError,
                               TypeSyntaxError, UninhabitedTypeError,
                               UnknownDeclarationError)
from repro.core.subtyping import SubtypeGraph, erase_coercions
from repro.core.succinct import SuccinctType, sigma
from repro.core.synthesizer import (Snippet, SynthesisResult, Synthesizer,
                                    synthesize)
from repro.core.terms import (Binder, LNFTerm, lnf, lnf_depth, lnf_size)
from repro.core.types import Arrow, BaseType, Type, arrow, base
from repro.core.weights import WeightPolicy

__all__ = [
    "SynthesisConfig",
    "Declaration", "DeclKind", "Environment", "RenderSpec", "RenderStyle",
    "declaration",
    "BudgetExhaustedError", "ReproError", "SynthesisError", "TypeCheckError",
    "TypeSyntaxError", "UninhabitedTypeError", "UnknownDeclarationError",
    "SubtypeGraph", "erase_coercions",
    "SuccinctType", "sigma",
    "Snippet", "SynthesisResult", "Synthesizer", "synthesize",
    "Binder", "LNFTerm", "lnf", "lnf_depth", "lnf_size",
    "Arrow", "BaseType", "Type", "arrow", "base",
    "WeightPolicy",
]
