"""Succinct types and the sigma conversion (paper §3.2).

Succinct types are simple types taken modulo the isomorphisms of currying and
products — equivalently, modulo commutativity, associativity and idempotence
of intuitionistic conjunction:

    ts ::= {ts, ..., ts} -> v        where v is a basic type

``sigma`` maps every simple type into this representation:

    sigma(v)          = {} -> v
    sigma(t1 -> t2)   = ({sigma(t1)} union A(sigma(t2))) -> R(sigma(t2))

Because the arguments form a *set*, ``A -> A -> B`` and ``A -> B`` (after the
duplicate collapses) and every argument permutation share one representative.
This is the representation that collapsed 3356 declarations to 1783 types in
the paper's running example, and the whole exploration phase works on it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from functools import lru_cache

from repro.core.types import Arrow, BaseType, Type


@dataclass(frozen=True)
class SuccinctType:
    """A succinct type ``{t1, ..., tn} -> result``.

    ``arguments`` is a frozenset of succinct types; ``result`` is the name of
    a basic type.  The basic succinct type ``v`` is represented — exactly as
    in the paper — as ``{} -> v``.
    """

    arguments: frozenset["SuccinctType"]
    result: str

    @property
    def is_primitive(self) -> bool:
        """True for ``{} -> v``, the succinct image of a basic type."""
        return not self.arguments

    def sorted_arguments(self) -> tuple["SuccinctType", ...]:
        """The argument set in canonical (deterministic) order.

        Memoised per structural value: exploration asks for the premises
        of every matched member at every visit, and re-sorting the same
        small set thousands of times adds up.
        """
        cached = _SORTED_ARGS.get(self)
        if cached is None:
            cached = tuple(sorted(self.arguments, key=sort_key))
            if len(_SORTED_ARGS) >= MEMO_CACHE_SIZE:
                _SORTED_ARGS.clear()
            _SORTED_ARGS[self] = cached
        return cached

    def __str__(self) -> str:
        return format_succinct(self)

    def __hash__(self) -> int:
        # Cached: succinct types key the intern table, environment sets and
        # per-env indexes; the generated hash re-hashes the argument
        # frozenset tuple on every lookup.
        try:
            return object.__getattribute__(self, "_hash_cache")
        except AttributeError:
            value = hash((self.arguments, self.result))
            object.__setattr__(self, "_hash_cache", value)
            return value

    def __getstate__(self):
        # Never pickle the cached hash: string hashing is per-process
        # randomised, so a restored cache would be silently wrong in the
        # engine's pool workers.
        state = dict(self.__dict__)
        state.pop("_hash_cache", None)
        return state


#: Canonical-instance table: one shared object per distinct succinct type.
#: A long-lived engine holds many environments whose signatures overlap
#: heavily; interning keeps one copy of each type and makes repeated
#: hashing/equality cheap (dict hits instead of deep structural work).
#:
#: The table is *bounded*: once it holds more than the configured limit,
#: the oldest entries (dict insertion order) are dropped.  Eviction is
#: always safe — interning is a sharing optimisation, never a correctness
#: requirement: equality and hashing on :class:`SuccinctType` are
#: structural, so a live scene that still references an evicted instance
#: keeps working, and a later request for the same structure simply
#: interns a fresh canonical copy.  Long-lived multi-tenant processes can
#: additionally call :func:`trim_intern_table` (the engine's
#: ``release_scene`` path does) or :func:`clear_intern_table` at tenancy
#: boundaries.
_INTERN_TABLE: dict["SuccinctType", "SuccinctType"] = {}

#: Stable per-process integer id of each interned instance.  Ids are
#: assigned from a monotonic counter that never resets, so an id can
#: never be reused for a different structure: consumers (the environment
#: arena in :mod:`repro.core.space`) key memo tables by id and rely only
#: on "same id => same structure", which eviction cannot violate — an
#: evicted-and-re-interned type simply gets a *fresh* id and the stale
#: memo entry goes cold.
_TYPE_IDS: dict["SuccinctType", int] = {}
_NEXT_TYPE_ID = 0

#: Structural-value memo for :meth:`SuccinctType.sorted_arguments`.
_SORTED_ARGS: dict["SuccinctType", tuple] = {}

#: Per-instance memo for :func:`succinct_subterms` (see there).
_SUBTERMS: dict["SuccinctType", frozenset] = {}

#: Default bound on interned instances.  The paper's biggest scene maps
#: 3356 declarations to 1783 succinct types, so a quarter-million entries
#: is room for hundreds of concurrently-live large scenes.
DEFAULT_INTERN_LIMIT = 1 << 18

#: Bound on the ``sigma``/``sort_key`` memo caches (per-type conversion
#: results; small entries, but previously unbounded).
MEMO_CACHE_SIZE = 1 << 16

_INTERN_LIMIT = DEFAULT_INTERN_LIMIT
_INTERN_EVICTIONS = 0

#: Guards table *mutation*: the async server interns from executor
#: threads while the event loop trims at scene release.  Lock-free reads
#: (plain dict get) stay on the hot path; insert/evict take the lock.
_INTERN_LOCK = threading.Lock()


def _evict_oldest_locked() -> bool:
    """Drop the oldest entry; caller holds :data:`_INTERN_LOCK`."""
    global _INTERN_EVICTIONS
    try:
        oldest = next(iter(_INTERN_TABLE))
    except StopIteration:                   # empty table
        return False
    del _INTERN_TABLE[oldest]
    _TYPE_IDS.pop(oldest, None)
    _INTERN_EVICTIONS += 1
    return True


def intern_succinct(stype: SuccinctType) -> SuccinctType:
    """The canonical shared instance structurally equal to *stype*."""
    global _NEXT_TYPE_ID
    canonical = _INTERN_TABLE.get(stype)
    if canonical is None:
        with _INTERN_LOCK:
            canonical = _INTERN_TABLE.get(stype)
            if canonical is None:
                _INTERN_TABLE[stype] = stype
                _TYPE_IDS[stype] = _NEXT_TYPE_ID
                _NEXT_TYPE_ID += 1
                canonical = stype
                while (len(_INTERN_TABLE) > _INTERN_LIMIT
                       and _evict_oldest_locked()):
                    pass
    return canonical


def type_id(stype: SuccinctType) -> int:
    """The stable per-process integer id of *stype* (interning it first).

    Two structurally equal types always map to the same id while either
    stays interned; distinct structures never share an id (the counter is
    monotonic and never reset, even by :func:`clear_intern_table`).
    """
    global _NEXT_TYPE_ID
    assigned = _TYPE_IDS.get(stype)
    if assigned is not None:
        return assigned
    canonical = intern_succinct(stype)
    assigned = _TYPE_IDS.get(canonical)
    if assigned is None:
        # The instance predates id-tracking (interned before this module
        # was reloaded) or was evicted between the intern and the lookup;
        # assign directly.
        with _INTERN_LOCK:
            assigned = _TYPE_IDS.get(canonical)
            if assigned is None:
                assigned = _NEXT_TYPE_ID
                _NEXT_TYPE_ID += 1
                _TYPE_IDS[canonical] = assigned
    return assigned


def intern_table_size() -> int:
    """Number of distinct succinct types currently interned."""
    return len(_INTERN_TABLE)


def intern_table_stats() -> dict:
    """Size, limit, id high-water mark and lifetime evictions."""
    return {"size": len(_INTERN_TABLE), "limit": _INTERN_LIMIT,
            "evictions": _INTERN_EVICTIONS,
            "type_ids_assigned": _NEXT_TYPE_ID,
            "subterm_memo": len(_SUBTERMS)}


def _clear_derived_memos() -> None:
    """Drop every memo that pins interned instances (they all rebuild)."""
    sigma.cache_clear()
    sort_key.cache_clear()
    _SORTED_ARGS.clear()
    _SUBTERMS.clear()


def set_intern_table_limit(limit: int) -> int:
    """Set the intern-table bound; returns the previous limit.

    The new bound is applied immediately (oldest entries evicted first);
    if that evicted anything, the ``sigma``/``sort_key`` memos — which
    pin interned instances — are cleared too, so the memory actually
    frees.
    """
    global _INTERN_LIMIT
    if limit <= 0:
        raise ValueError(f"intern table limit must be positive, got {limit}")
    with _INTERN_LOCK:
        previous = _INTERN_LIMIT
        _INTERN_LIMIT = limit
        before = len(_INTERN_TABLE)
        while len(_INTERN_TABLE) > _INTERN_LIMIT and _evict_oldest_locked():
            pass
        evicted = before - len(_INTERN_TABLE)
    if evicted:
        _clear_derived_memos()
    return previous


#: Entries evicted per lock acquisition by :func:`trim_intern_table`, so a
#: large shed never holds interning threads on the lock for long.
TRIM_CHUNK = 4096


def trim_intern_table(max_entries: int = 0) -> int:
    """Shed interned instances down to *max_entries*; returns evicted count.

    The ``sigma``/``sort_key`` memo caches pin interned instances, so a
    trim that actually evicts also clears them — they are pure memos and
    rebuild on demand.  This is the engine's scene-release hook: evicting
    a prepared scene calls this so the types it interned can be freed.
    Eviction happens in :data:`TRIM_CHUNK`-sized bites, releasing the
    intern lock between chunks, so a multi-hundred-thousand-entry shed
    stays a sequence of short pauses rather than one long stall.
    """
    total = 0
    while True:
        with _INTERN_LOCK:
            chunk = 0
            while (len(_INTERN_TABLE) > max_entries and chunk < TRIM_CHUNK
                   and _evict_oldest_locked()):
                chunk += 1
            done = len(_INTERN_TABLE) <= max_entries or chunk == 0
        total += chunk
        if done:
            break
    if total:
        _clear_derived_memos()
    return total


def clear_intern_table() -> None:
    """Drop all interned instances (and the memoised conversions over them)."""
    with _INTERN_LOCK:
        _INTERN_TABLE.clear()
        _TYPE_IDS.clear()
    _clear_derived_memos()


def primitive(name: str) -> SuccinctType:
    """The succinct type ``{} -> name``."""
    return intern_succinct(SuccinctType(frozenset(), name))


def succinct(arguments: frozenset[SuccinctType] | set[SuccinctType] | tuple,
             result: str) -> SuccinctType:
    """Construct ``{arguments} -> result``."""
    return intern_succinct(SuccinctType(frozenset(arguments), result))


@lru_cache(maxsize=MEMO_CACHE_SIZE)
def sort_key(stype: SuccinctType) -> tuple:
    """A total order on succinct types (for deterministic iteration).

    Memoised: exploration sorts environments with thousands of members, and
    the recursive key would otherwise be recomputed per comparison.
    """
    return (stype.result, len(stype.arguments),
            tuple(sorted(sort_key(argument) for argument in stype.arguments)))


@lru_cache(maxsize=MEMO_CACHE_SIZE)
def sigma(tpe: Type) -> SuccinctType:
    """The sigma conversion from simple to succinct types (§3.2)."""
    if isinstance(tpe, BaseType):
        return primitive(tpe.name)
    assert isinstance(tpe, Arrow)
    tail = sigma(tpe.result)
    return intern_succinct(
        SuccinctType(frozenset((sigma(tpe.argument),)) | tail.arguments,
                     tail.result))


def arguments_of(stype: SuccinctType) -> frozenset[SuccinctType]:
    """The paper's ``A`` function."""
    return stype.arguments


def result_of(stype: SuccinctType) -> str:
    """The paper's ``R`` function (name of the basic result type)."""
    return stype.result


def succinct_subterms(stype: SuccinctType) -> frozenset[SuccinctType]:
    """All succinct types reachable through argument sets, inclusive.

    The backward search (§5.3) only ever adds such subterms to the
    environment, which is what makes its state space finite.

    Memoised per interned instance: the bare recursion re-walks shared
    argument structure, which is worst-case exponential on deeply nested
    curried types (each nesting level revisits every subterm below it);
    with the memo each distinct subterm is expanded exactly once.
    """
    stype = intern_succinct(stype)
    cached = _SUBTERMS.get(stype)
    if cached is not None:
        return cached
    collected = {stype}
    for argument in stype.arguments:
        collected |= succinct_subterms(argument)
    result = frozenset(collected)
    if len(_SUBTERMS) >= MEMO_CACHE_SIZE:
        _SUBTERMS.clear()
    _SUBTERMS[stype] = result
    return result


def format_succinct(stype: SuccinctType) -> str:
    """Render a succinct type; primitives print bare, like the paper."""
    if stype.is_primitive:
        return stype.result
    inner = ", ".join(format_succinct(a) for a in stype.sorted_arguments())
    return "{" + inner + "} -> " + stype.result


def compression_ratio(types: list[Type]) -> tuple[int, int]:
    """Return ``(len(types), distinct succinct images)`` — the §3.2 statistic.

    In the paper's Figure 1 scene this was 3356 declarations against 1783
    succinct types.
    """
    return len(types), len({sigma(tpe) for tpe in types})
