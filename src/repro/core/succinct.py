"""Succinct types and the sigma conversion (paper §3.2).

Succinct types are simple types taken modulo the isomorphisms of currying and
products — equivalently, modulo commutativity, associativity and idempotence
of intuitionistic conjunction:

    ts ::= {ts, ..., ts} -> v        where v is a basic type

``sigma`` maps every simple type into this representation:

    sigma(v)          = {} -> v
    sigma(t1 -> t2)   = ({sigma(t1)} union A(sigma(t2))) -> R(sigma(t2))

Because the arguments form a *set*, ``A -> A -> B`` and ``A -> B`` (after the
duplicate collapses) and every argument permutation share one representative.
This is the representation that collapsed 3356 declarations to 1783 types in
the paper's running example, and the whole exploration phase works on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.types import Arrow, BaseType, Type


@dataclass(frozen=True)
class SuccinctType:
    """A succinct type ``{t1, ..., tn} -> result``.

    ``arguments`` is a frozenset of succinct types; ``result`` is the name of
    a basic type.  The basic succinct type ``v`` is represented — exactly as
    in the paper — as ``{} -> v``.
    """

    arguments: frozenset["SuccinctType"]
    result: str

    @property
    def is_primitive(self) -> bool:
        """True for ``{} -> v``, the succinct image of a basic type."""
        return not self.arguments

    def sorted_arguments(self) -> tuple["SuccinctType", ...]:
        """The argument set in canonical (deterministic) order."""
        return tuple(sorted(self.arguments, key=sort_key))

    def __str__(self) -> str:
        return format_succinct(self)


#: Canonical-instance table: one shared object per distinct succinct type.
#: A long-lived engine holds many environments whose signatures overlap
#: heavily; interning keeps one copy of each type and makes repeated
#: hashing/equality cheap (dict hits instead of deep structural work).
#:
#: The table (like the ``sigma``/``sort_key`` memo caches, which predate
#: it) grows with the set of distinct types ever seen and is never evicted
#: automatically; a process serving unbounded scene churn should call
#: :func:`clear_intern_table` at tenancy boundaries.  Bounding this with
#: weak references is on the roadmap's serving-scale list.
_INTERN_TABLE: dict["SuccinctType", "SuccinctType"] = {}


def intern_succinct(stype: SuccinctType) -> SuccinctType:
    """The canonical shared instance structurally equal to *stype*."""
    canonical = _INTERN_TABLE.get(stype)
    if canonical is None:
        _INTERN_TABLE[stype] = stype
        canonical = stype
    return canonical


def intern_table_size() -> int:
    """Number of distinct succinct types currently interned."""
    return len(_INTERN_TABLE)


def clear_intern_table() -> None:
    """Drop all interned instances (and the memoised conversions over them)."""
    _INTERN_TABLE.clear()
    sigma.cache_clear()
    sort_key.cache_clear()


def primitive(name: str) -> SuccinctType:
    """The succinct type ``{} -> name``."""
    return intern_succinct(SuccinctType(frozenset(), name))


def succinct(arguments: frozenset[SuccinctType] | set[SuccinctType] | tuple,
             result: str) -> SuccinctType:
    """Construct ``{arguments} -> result``."""
    return intern_succinct(SuccinctType(frozenset(arguments), result))


@lru_cache(maxsize=None)
def sort_key(stype: SuccinctType) -> tuple:
    """A total order on succinct types (for deterministic iteration).

    Memoised: exploration sorts environments with thousands of members, and
    the recursive key would otherwise be recomputed per comparison.
    """
    return (stype.result, len(stype.arguments),
            tuple(sorted(sort_key(argument) for argument in stype.arguments)))


@lru_cache(maxsize=None)
def sigma(tpe: Type) -> SuccinctType:
    """The sigma conversion from simple to succinct types (§3.2)."""
    if isinstance(tpe, BaseType):
        return primitive(tpe.name)
    assert isinstance(tpe, Arrow)
    tail = sigma(tpe.result)
    return intern_succinct(
        SuccinctType(frozenset((sigma(tpe.argument),)) | tail.arguments,
                     tail.result))


def arguments_of(stype: SuccinctType) -> frozenset[SuccinctType]:
    """The paper's ``A`` function."""
    return stype.arguments


def result_of(stype: SuccinctType) -> str:
    """The paper's ``R`` function (name of the basic result type)."""
    return stype.result


def succinct_subterms(stype: SuccinctType) -> frozenset[SuccinctType]:
    """All succinct types reachable through argument sets, inclusive.

    The backward search (§5.3) only ever adds such subterms to the
    environment, which is what makes its state space finite.
    """
    collected = {stype}
    for argument in stype.arguments:
        collected |= succinct_subterms(argument)
    return frozenset(collected)


def format_succinct(stype: SuccinctType) -> str:
    """Render a succinct type; primitives print bare, like the paper."""
    if stype.is_primitive:
        return stype.result
    inner = ", ".join(format_succinct(a) for a in stype.sorted_arguments())
    return "{" + inner + "} -> " + stype.result


def compression_ratio(types: list[Type]) -> tuple[int, int]:
    """Return ``(len(types), distinct succinct images)`` — the §3.2 statistic.

    In the paper's Figure 1 scene this was 3356 declarations against 1783
    succinct types.
    """
    return len(types), len({sigma(tpe) for tpe in types})
