"""Backward exploration of the succinct search space (paper §5.3, Fig. 6/7).

The exploration phase starts from the desired succinct type and discovers
the part of the search space reachable from it, producing *reachability
edges* (the paper's reachability terms).  The three rules:

* **STRIP** — a request for a function type ``(S -> t) ;Gamma ?`` becomes a
  request for its result in the extended environment: ``t ;Gamma+S ?``.
  We normalise eagerly, so every stored :class:`Request` targets a basic
  type.
* **MATCH** — a request ``t ;Gamma ?`` matches every environment member
  ``S' -> t`` whose result is ``t``; each match is a reachability edge whose
  premises are the types in ``S'``.
* **PROP** — every premise ``t'`` of a match spawns the request
  ``t' ;Gamma ?`` (which STRIP then normalises to ``R(t') ;Gamma+A(t') ?``).

The worklist is either FIFO (plain queue) or a priority queue ordered by the
weight of the requested type in the *initial* environment (§5.6) — the
weighted discipline is what makes the search goal-directed in practice.

Termination: every type ever added to an environment is a succinct subterm
of the initial environment or the goal, so the request space is finite.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.core.succinct import SuccinctType, sort_key

#: An environment in succinct space: just the set of member types.
EnvKey = frozenset  # frozenset[SuccinctType]


@dataclass(frozen=True)
class Request:
    """A normalised (post-STRIP) exploration request ``target ;env ?``.

    ``target`` is the name of a basic type; ``env`` is the succinct
    environment in effect, *including* any argument sets added by STRIP.
    """

    target: str
    env: EnvKey

    def __str__(self) -> str:
        return f"{self.target} ;|env|={len(self.env)} ?"


@dataclass(frozen=True)
class ReachabilityEdge:
    """A MATCH result: ``request.target`` is derivable from ``source``.

    ``source`` is the environment member ``S' -> target`` that matched; the
    edge's children are the requests its premises propagate to.
    """

    request: Request
    source: SuccinctType

    def premises(self) -> tuple[SuccinctType, ...]:
        """The matched argument set ``S'`` in canonical order."""
        return self.source.sorted_arguments()

    def children(self) -> tuple[Request, ...]:
        """The requests this edge depends on (PROP then STRIP)."""
        return tuple(child_request(premise, self.request.env)
                     for premise in self.premises())


def strip(target: SuccinctType, env: EnvKey) -> Request:
    """The STRIP rule: ``(S -> t) ;Gamma ?``  =>  ``t ;Gamma+S ?``.

    Primitive targets reuse the environment object unchanged: environments
    hold thousands of types, and copying one per request dominates the
    exploration cost otherwise.
    """
    if not target.arguments:
        return Request(target.result, env)
    extended = env if target.arguments <= env else env | target.arguments
    return Request(target.result, extended)


def child_request(premise: SuccinctType, env: EnvKey) -> Request:
    """PROP followed by STRIP for one premise type."""
    return strip(premise, env)


@dataclass
class SearchSpace:
    """The explored search space: nodes, edges and exploration statistics.

    ``predecessors`` is the §5.7 backward map, filled in *during*
    exploration: for every request, the reachability edges whose premises
    propagate to it.  Pattern generation can then resolve its "compatible"
    set by lookup instead of scanning the space.
    """

    root: Request
    edges: dict[Request, tuple[ReachabilityEdge, ...]] = field(default_factory=dict)
    predecessors: dict[Request, tuple[ReachabilityEdge, ...]] = \
        field(default_factory=dict)
    order: tuple[Request, ...] = ()
    iterations: int = 0
    truncated: bool = False
    elapsed_seconds: float = 0.0

    def nodes(self) -> tuple[Request, ...]:
        return self.order

    def all_edges(self) -> list[ReachabilityEdge]:
        return [edge for edges in self.edges.values() for edge in edges]

    def edge_count(self) -> int:
        return sum(len(edges) for edges in self.edges.values())

    def __repr__(self) -> str:
        return (f"SearchSpace({len(self.order)} nodes, "
                f"{self.edge_count()} edges, truncated={self.truncated})")


class _EnvIndex:
    """Per-environment index: result type name -> members with that result.

    Environments encountered during a search share almost all content, but
    they are distinct frozensets; we memoise one index per distinct key.
    """

    def __init__(self) -> None:
        self._cache: dict[EnvKey, dict[str, tuple[SuccinctType, ...]]] = {}

    def members_returning(self, env: EnvKey, target: str) -> tuple[SuccinctType, ...]:
        index = self._cache.get(env)
        if index is None:
            grouped: dict[str, list[SuccinctType]] = {}
            for member in sorted(env, key=sort_key):
                grouped.setdefault(member.result, []).append(member)
            index = {result: tuple(members)
                     for result, members in grouped.items()}
            self._cache[env] = index
        return index.get(target, ())


#: Priority function for requests: lower = explored earlier.
RequestPriority = Callable[[SuccinctType], float]


class _Worklist:
    """FIFO or weighted-priority worklist over (priority, request) pairs."""

    def __init__(self, prioritised: bool):
        self._prioritised = prioritised
        self._fifo: deque = deque()
        self._heap: list = []
        self._seq = 0

    def push(self, priority: float, request: Request) -> None:
        if self._prioritised:
            heapq.heappush(self._heap, (priority, self._seq, request))
        else:
            self._fifo.append(request)
        self._seq += 1

    def pop(self) -> Request:
        if self._prioritised:
            return heapq.heappop(self._heap)[2]
        return self._fifo.popleft()

    def __bool__(self) -> bool:
        return bool(self._heap) if self._prioritised else bool(self._fifo)


def explore(env: EnvKey, goal: SuccinctType,
            priority: Optional[RequestPriority] = None,
            max_nodes: Optional[int] = None,
            time_limit: Optional[float] = None,
            on_edges: Optional[Callable[[Iterable[ReachabilityEdge]], None]] = None,
            ) -> SearchSpace:
    """Run the Explore algorithm of Fig. 7.

    Parameters
    ----------
    env:
        The initial succinct environment (sigma of the declaration set,
        coercions included).
    goal:
        The desired succinct type; STRIP is applied to form the root request.
    priority:
        Optional request-priority function (the §5.6 weighted discipline):
        maps the *requested succinct type* to the weight of that type in the
        initial environment.  ``None`` selects the plain FIFO queue.
    max_nodes / time_limit:
        Resource budgets; exceeding either marks the space ``truncated``.
    on_edges:
        Optional callback invoked with each batch of new edges — the hook
        the interleaved prover (§5.6) uses to trigger incremental pattern
        generation as soon as new reachability terms appear.

    Returns the explored :class:`SearchSpace`.
    """
    start = time.perf_counter()
    env = frozenset(env)
    root = strip(goal, env)

    index = _EnvIndex()
    worklist = _Worklist(prioritised=priority is not None)
    worklist.push(priority(goal) if priority else 0.0, root)

    space = SearchSpace(root=root)
    visited: set[Request] = set()
    order: list[Request] = []
    predecessors: dict[Request, list[ReachabilityEdge]] = {}
    iterations = 0

    while worklist:
        if max_nodes is not None and len(visited) >= max_nodes:
            space.truncated = True
            break
        if time_limit is not None and time.perf_counter() - start > time_limit:
            space.truncated = True
            break
        current = worklist.pop()
        if current in visited:
            continue
        visited.add(current)
        order.append(current)
        iterations += 1

        found = [ReachabilityEdge(current, member)
                 for member in index.members_returning(current.env, current.target)]
        space.edges[current] = tuple(found)
        if on_edges is not None and found:
            on_edges(found)

        for edge in found:
            for premise in edge.premises():
                child = child_request(premise, current.env)
                # The §5.7 backward map: `edge` waits on `child`.
                predecessors.setdefault(child, []).append(edge)
                if child not in visited:
                    worklist.push(priority(premise) if priority else 0.0, child)

    # Deduplicate watchers at the source: two premises of one edge can
    # strip to the same child request (a higher-order premise next to a
    # direct one), and a consumer counting *distinct* children must see
    # each watcher once or it double-decrements (see GenerateP §5.7).
    space.predecessors = {request: tuple(dict.fromkeys(edges))
                          for request, edges in predecessors.items()}
    space.order = tuple(order)
    space.iterations = iterations
    space.elapsed_seconds = time.perf_counter() - start
    return space
