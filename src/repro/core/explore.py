"""Backward exploration of the succinct search space (paper §5.3, Fig. 6/7).

The exploration phase starts from the desired succinct type and discovers
the part of the search space reachable from it, producing *reachability
edges* (the paper's reachability terms).  The three rules:

* **STRIP** — a request for a function type ``(S -> t) ;Gamma ?`` becomes a
  request for its result in the extended environment: ``t ;Gamma+S ?``.
  We normalise eagerly, so every stored :class:`Request` targets a basic
  type.
* **MATCH** — a request ``t ;Gamma ?`` matches every environment member
  ``S' -> t`` whose result is ``t``; each match is a reachability edge whose
  premises are the types in ``S'``.
* **PROP** — every premise ``t'`` of a match spawns the request
  ``t' ;Gamma ?`` (which STRIP then normalises to ``R(t') ;Gamma+A(t') ?``).

The worklist is either FIFO (plain queue) or a priority queue ordered by the
weight of the requested type in the *initial* environment (§5.6) — the
weighted discipline is what makes the search goal-directed in practice.

Termination: every type ever added to an environment is a succinct subterm
of the initial environment or the goal, so the request space is finite.

Two implementations live here:

* :func:`explore` — the production path.  It runs entirely over integer
  ids: environments are interned in an :class:`~repro.core.space.EnvArena`
  (STRIP is a transition-memo hit, MATCH an incremental per-env index
  lookup) and requests are dense ``(target, env_id)`` node ids, so the
  inner loop hashes small ints instead of multi-thousand-member
  frozensets.  The resulting :class:`SearchSpace` carries the raw
  :class:`IndexedSpace` and materialises the classic
  :class:`Request`/:class:`ReachabilityEdge` views lazily, on first
  access — consumers that only need counts or the indexed form never pay
  for view construction.
* :func:`explore_reference` — the direct structural transcription of
  Fig. 7 (the pre-arena implementation), kept as the executable
  specification.  The property suite checks that both produce identical
  spaces, truncated runs included.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.core.space import EnvArena
from repro.core.succinct import SuccinctType, sort_key

#: An environment in succinct space: just the set of member types.
EnvKey = frozenset  # frozenset[SuccinctType]


@dataclass(frozen=True)
class Request:
    """A normalised (post-STRIP) exploration request ``target ;env ?``.

    ``target`` is the name of a basic type; ``env`` is the succinct
    environment in effect, *including* any argument sets added by STRIP.
    """

    target: str
    env: EnvKey

    def __str__(self) -> str:
        return f"{self.target} ;|env|={len(self.env)} ?"


@dataclass(frozen=True)
class ReachabilityEdge:
    """A MATCH result: ``request.target`` is derivable from ``source``.

    ``source`` is the environment member ``S' -> target`` that matched; the
    edge's children are the requests its premises propagate to.
    """

    request: Request
    source: SuccinctType

    def premises(self) -> tuple[SuccinctType, ...]:
        """The matched argument set ``S'`` in canonical order."""
        return self.source.sorted_arguments()

    def children(self) -> tuple[Request, ...]:
        """The requests this edge depends on (PROP then STRIP)."""
        return tuple(child_request(premise, self.request.env)
                     for premise in self.premises())


def strip(target: SuccinctType, env: EnvKey) -> Request:
    """The STRIP rule: ``(S -> t) ;Gamma ?``  =>  ``t ;Gamma+S ?``.

    Primitive targets reuse the environment object unchanged: environments
    hold thousands of types, and copying one per request dominates the
    exploration cost otherwise.
    """
    if not target.arguments:
        return Request(target.result, env)
    extended = env if target.arguments <= env else env | target.arguments
    return Request(target.result, extended)


def child_request(premise: SuccinctType, env: EnvKey) -> Request:
    """PROP followed by STRIP for one premise type."""
    return strip(premise, env)


@dataclass
class IndexedSpace:
    """The explored space in integer form: dense node and edge arrays.

    Nodes are requests, numbered in order of first *mention* (the root,
    then children as PROP discovers them); a node can therefore exist
    without ever having been visited — truncated runs reference such
    frontier nodes from their edges.  Edges are numbered in discovery
    order and grouped per visited node as a contiguous span.
    """

    arena: EnvArena
    root: int = 0
    node_targets: list = field(default_factory=list)   # node -> basic type
    node_envs: list = field(default_factory=list)      # node -> env id
    order: list = field(default_factory=list)          # visited, pop order
    edge_node: list = field(default_factory=list)      # edge -> its request
    edge_source: list = field(default_factory=list)    # edge -> matched member
    edge_children: list = field(default_factory=list)  # edge -> child nodes
    node_edges: dict = field(default_factory=dict)     # node -> (start, end)
    predecessors: dict = field(default_factory=dict)   # node -> [edge, ...]
    _requests: dict = field(default_factory=dict, repr=False)
    _edges: dict = field(default_factory=dict, repr=False)

    def node_count(self) -> int:
        return len(self.node_targets)

    def edge_count(self) -> int:
        return len(self.edge_node)

    # -- classic views -------------------------------------------------------

    def request_view(self, node: int) -> Request:
        """The :class:`Request` behind one node id (memoised)."""
        view = self._requests.get(node)
        if view is None:
            view = Request(self.node_targets[node],
                           self.arena.members(self.node_envs[node]))
            self._requests[node] = view
        return view

    def edge_view(self, edge: int) -> ReachabilityEdge:
        """The :class:`ReachabilityEdge` behind one edge id (memoised)."""
        view = self._edges.get(edge)
        if view is None:
            view = ReachabilityEdge(self.request_view(self.edge_node[edge]),
                                    self.edge_source[edge])
            self._edges[edge] = view
        return view


class SearchSpace:
    """The explored search space: nodes, edges and exploration statistics.

    ``predecessors`` is the §5.7 backward map, filled in *during*
    exploration: for every request, the reachability edges whose premises
    propagate to it.  Pattern generation can then resolve its "compatible"
    set by lookup instead of scanning the space.

    Arena-backed spaces (``indexed`` is set) materialise ``edges`` /
    ``predecessors`` / ``order`` lazily from the integer arrays on first
    access; the reference explorer fills them eagerly.
    """

    def __init__(self, root: Request,
                 indexed: Optional[IndexedSpace] = None):
        self.root = root
        self.iterations = 0
        self.truncated = False
        self.elapsed_seconds = 0.0
        self.indexed = indexed
        self._edges: Optional[dict] = None if indexed else {}
        self._predecessors: Optional[dict] = None if indexed else {}
        self._order: Optional[tuple] = None if indexed else ()

    # -- lazily materialised views ------------------------------------------

    def _materialize(self) -> None:
        isp = self.indexed
        request = isp.request_view
        edge = isp.edge_view
        self._order = tuple(request(node) for node in isp.order)
        self._edges = {
            request(node): tuple(edge(j) for j in range(*isp.node_edges[node]))
            for node in isp.order
        }
        self._predecessors = {
            request(node): tuple(edge(j) for j in edges)
            for node, edges in isp.predecessors.items()
        }

    @property
    def edges(self) -> dict:
        if self._edges is None:
            self._materialize()
        return self._edges

    @edges.setter
    def edges(self, value: dict) -> None:
        self._edges = value

    @property
    def predecessors(self) -> dict:
        if self._predecessors is None:
            self._materialize()
        return self._predecessors

    @predecessors.setter
    def predecessors(self, value: dict) -> None:
        self._predecessors = value

    @property
    def order(self) -> tuple:
        if self._order is None:
            self._materialize()
        return self._order

    @order.setter
    def order(self, value: tuple) -> None:
        self._order = value

    # -- queries -------------------------------------------------------------

    def nodes(self) -> tuple[Request, ...]:
        return self.order

    def all_edges(self) -> list[ReachabilityEdge]:
        return [edge for edges in self.edges.values() for edge in edges]

    def node_count(self) -> int:
        """Visited requests, without materialising the views."""
        return (len(self.indexed.order) if self._order is None
                else len(self._order))

    def edge_count(self) -> int:
        if self.indexed is not None:
            return self.indexed.edge_count()
        return sum(len(edges) for edges in self.edges.values())

    def __repr__(self) -> str:
        return (f"SearchSpace({self.node_count()} nodes, "
                f"{self.edge_count()} edges, truncated={self.truncated})")


class _EnvIndex:
    """Per-environment index: result type name -> members with that result.

    Environments encountered during a search share almost all content, but
    they are distinct frozensets; we memoise one index per distinct key.
    (Reference path only — the production explorer uses the arena's
    incrementally built per-env indexes.)
    """

    def __init__(self) -> None:
        self._cache: dict[EnvKey, dict[str, tuple[SuccinctType, ...]]] = {}

    def members_returning(self, env: EnvKey, target: str) -> tuple[SuccinctType, ...]:
        index = self._cache.get(env)
        if index is None:
            grouped: dict[str, list[SuccinctType]] = {}
            for member in sorted(env, key=sort_key):
                grouped.setdefault(member.result, []).append(member)
            index = {result: tuple(members)
                     for result, members in grouped.items()}
            self._cache[env] = index
        return index.get(target, ())


#: Priority function for requests: lower = explored earlier.
RequestPriority = Callable[[SuccinctType], float]


class _Worklist:
    """FIFO or weighted-priority worklist over (priority, item) pairs."""

    def __init__(self, prioritised: bool):
        self._prioritised = prioritised
        self._fifo: deque = deque()
        self._heap: list = []
        self._seq = 0

    def push(self, priority: float, item) -> None:
        if self._prioritised:
            heapq.heappush(self._heap, (priority, self._seq, item))
        else:
            self._fifo.append(item)
        self._seq += 1

    def pop(self):
        if self._prioritised:
            return heapq.heappop(self._heap)[2]
        return self._fifo.popleft()

    def __bool__(self) -> bool:
        return bool(self._heap) if self._prioritised else bool(self._fifo)


def explore(env: EnvKey, goal: SuccinctType,
            priority: Optional[RequestPriority] = None,
            max_nodes: Optional[int] = None,
            time_limit: Optional[float] = None,
            on_edges: Optional[Callable[[Iterable[ReachabilityEdge]], None]] = None,
            arena: Optional[EnvArena] = None,
            on_edges_indexed: Optional[Callable[[IndexedSpace, int, int], None]] = None,
            ) -> SearchSpace:
    """Run the Explore algorithm of Fig. 7 over the integer-ID arena.

    Parameters
    ----------
    env:
        The initial succinct environment (sigma of the declaration set,
        coercions included).
    goal:
        The desired succinct type; STRIP is applied to form the root request.
    priority:
        Optional request-priority function (the §5.6 weighted discipline):
        maps the *requested succinct type* to the weight of that type in the
        initial environment.  ``None`` selects the plain FIFO queue.
    max_nodes / time_limit:
        Resource budgets; exceeding either marks the space ``truncated``.
    on_edges:
        Optional callback invoked with each batch of new edges — the hook
        the interleaved prover (§5.6) uses to trigger incremental pattern
        generation as soon as new reachability terms appear.  Receives
        classic :class:`ReachabilityEdge` views (materialised per batch).
    arena:
        Optional long-lived :class:`~repro.core.space.EnvArena` to run in.
        A scene-scoped arena (see ``Environment.succinct_arena``) carries
        its STRIP transition memo and MATCH indexes from query to query;
        omitted, a private arena lives for just this call.
    on_edges_indexed:
        Like ``on_edges`` but in integer form: called as ``(space, start,
        end)`` with the half-open edge-id range just produced.  The
        engine's interleaved pattern generator consumes this hook — no
        view objects are built.  Both hooks may be passed; the indexed one
        fires first.

    Returns the explored :class:`SearchSpace`.
    """
    start = time.perf_counter()
    env = frozenset(env)
    if arena is None:
        arena = EnvArena(env)
    root_env = arena.intern(env)

    isp = IndexedSpace(arena=arena)
    node_targets = isp.node_targets
    node_envs = isp.node_envs
    edge_node = isp.edge_node
    edge_source = isp.edge_source
    edge_children = isp.edge_children
    node_edges = isp.node_edges
    order = isp.order
    predecessors: dict[int, list[int]] = {}
    node_of: dict[tuple[str, int], int] = {}
    arena_strip = arena.strip
    arena_members = arena.members_returning

    def node_for(target: str, env_id: int) -> int:
        key = (target, env_id)
        node = node_of.get(key)
        if node is None:
            node = len(node_targets)
            node_of[key] = node
            node_targets.append(target)
            node_envs.append(env_id)
        return node

    root_target, root_env_id = arena_strip(goal, root_env)
    root = node_for(root_target, root_env_id)
    isp.root = root

    worklist = _Worklist(prioritised=priority is not None)
    worklist.push(priority(goal) if priority else 0.0, root)

    visited: set[int] = set()
    truncated = False

    while worklist:
        if max_nodes is not None and len(visited) >= max_nodes:
            truncated = True
            break
        if time_limit is not None and time.perf_counter() - start > time_limit:
            truncated = True
            break
        current = worklist.pop()
        if current in visited:
            continue
        visited.add(current)
        order.append(current)

        env_id = node_envs[current]
        span_start = len(edge_node)
        for member in arena_members(env_id, node_targets[current]):
            edge = len(edge_node)
            edge_node.append(current)
            edge_source.append(member)
            children = []
            for premise in member.sorted_arguments():
                child = node_for(*arena_strip(premise, env_id))
                children.append(child)
                # The §5.7 backward map: `edge` waits on `child`.
                waiters = predecessors.get(child)
                if waiters is None:
                    predecessors[child] = [edge]
                else:
                    waiters.append(edge)
                if child not in visited:
                    worklist.push(priority(premise) if priority else 0.0,
                                  child)
            edge_children.append(tuple(children))
        span_end = len(edge_node)
        node_edges[current] = (span_start, span_end)
        if span_end > span_start:
            if on_edges_indexed is not None:
                on_edges_indexed(isp, span_start, span_end)
            if on_edges is not None:
                on_edges([isp.edge_view(j)
                          for j in range(span_start, span_end)])

    # Deduplicate watchers at the source: two premises of one edge can
    # strip to the same child request (a higher-order premise next to a
    # direct one), and a consumer counting *distinct* children must see
    # each watcher once or it double-decrements (see GenerateP §5.7).
    isp.predecessors = {node: list(dict.fromkeys(edges))
                        for node, edges in predecessors.items()}

    space = SearchSpace(root=isp.request_view(root), indexed=isp)
    space.truncated = truncated
    space.iterations = len(order)
    space.elapsed_seconds = time.perf_counter() - start
    return space


def explore_reference(env: EnvKey, goal: SuccinctType,
                      priority: Optional[RequestPriority] = None,
                      max_nodes: Optional[int] = None,
                      time_limit: Optional[float] = None,
                      on_edges: Optional[Callable[[Iterable[ReachabilityEdge]], None]] = None,
                      ) -> SearchSpace:
    """Fig. 7 in direct structural form — the retained reference path.

    Semantically identical to :func:`explore` (the property suite asserts
    node/edge/pattern equality, truncated runs included); kept as the
    executable specification the arena implementation is checked against.
    """
    start = time.perf_counter()
    env = frozenset(env)
    root = strip(goal, env)

    index = _EnvIndex()
    worklist = _Worklist(prioritised=priority is not None)
    worklist.push(priority(goal) if priority else 0.0, root)

    space = SearchSpace(root=root)
    visited: set[Request] = set()
    order: list[Request] = []
    predecessors: dict[Request, list[ReachabilityEdge]] = {}
    iterations = 0

    while worklist:
        if max_nodes is not None and len(visited) >= max_nodes:
            space.truncated = True
            break
        if time_limit is not None and time.perf_counter() - start > time_limit:
            space.truncated = True
            break
        current = worklist.pop()
        if current in visited:
            continue
        visited.add(current)
        order.append(current)
        iterations += 1

        found = [ReachabilityEdge(current, member)
                 for member in index.members_returning(current.env, current.target)]
        space.edges[current] = tuple(found)
        if on_edges is not None and found:
            on_edges(found)

        for edge in found:
            for premise in edge.premises():
                child = child_request(premise, current.env)
                predecessors.setdefault(child, []).append(edge)
                if child not in visited:
                    worklist.push(priority(premise) if priority else 0.0, child)

    space.predecessors = {request: tuple(dict.fromkeys(edges))
                          for request, edges in predecessors.items()}
    space.order = tuple(order)
    space.iterations = iterations
    space.elapsed_seconds = time.perf_counter() - start
    return space
