"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError`, so callers can catch a
single type at API boundaries while tests assert on the precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TypeSyntaxError(ReproError):
    """A type expression or declaration file failed to parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class TypeCheckError(ReproError):
    """A term failed to type-check against an environment."""


class UnknownDeclarationError(ReproError):
    """A term references a name that is not bound in the environment."""


class SynthesisError(ReproError):
    """The synthesis pipeline was configured or invoked incorrectly."""


class UninhabitedTypeError(SynthesisError):
    """Raised by APIs that require at least one inhabitant when none exists."""


class BudgetExhaustedError(SynthesisError):
    """An explicit resource budget (steps, time) ran out mid-synthesis."""


class EnvironmentError_(ReproError):
    """An environment was constructed inconsistently (duplicate names, ...)."""


class CorpusError(ReproError):
    """Corpus generation or mining failed an internal consistency check."""


class BenchmarkError(ReproError):
    """A benchmark scene is inconsistent (missing goal, bad expectations)."""


class EngineError(ReproError):
    """The completion engine was asked something it cannot serve
    (no goal, conflicting policy/variant, unpreparable scene, ...)."""
