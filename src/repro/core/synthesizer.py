"""The top-level synthesis pipeline (paper Fig. 5 and §5.6).

``Synthesize(Gamma_o, tau_o, N)`` runs three phases:

1. **Explore** — backward search over succinct types (`repro.core.explore`);
2. **GenerateP** — pattern generation (`repro.core.generate_patterns`);
3. **GenerateT** — best-first term reconstruction (`repro.core.reconstruct`).

:class:`Synthesizer` wires the phases together with the configured budgets,
weight policy and subtype graph, erases coercions from the results (§6),
renders Scala-like code for each snippet, and reports per-phase timings —
the quantities Table 2 calls *Prove*, *Recon* and *Total*.

With ``config.interleaved`` (the default, following §5.6) pattern generation
runs online: every batch of reachability edges found by exploration is fed
to an :class:`IncrementalPatternGenerator` immediately, so a time-limited
prover still yields patterns for everything it has explored.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import SynthesisConfig
from repro.core.environment import Environment
from repro.core.errors import SynthesisError
from repro.core.explore import SearchSpace, explore
from repro.core.generate_patterns import (IndexedPatternGenerator,
                                          PatternSet, generate_patterns)
from repro.core.reconstruct import Reconstructor
from repro.core.subtyping import (SubtypeGraph, environment_with_subtyping,
                                  erase_coercions)
from repro.core.succinct import sigma
from repro.core.terms import LNFTerm, canonicalize_lnf
from repro.core.types import Type
from repro.core.weights import WeightPolicy


@dataclass(frozen=True)
class Snippet:
    """One ranked suggestion.

    ``term`` is the raw synthesized term (coercions included, as derived);
    ``surface_term`` has coercions erased (§6) — this is what the user sees;
    ``code`` is the rendered Scala-like text; ``rank`` is 1-based.
    """

    term: LNFTerm
    surface_term: LNFTerm
    weight: float
    rank: int
    code: str

    def __str__(self) -> str:
        return f"#{self.rank} [{self.weight:.1f}] {self.code}"


@dataclass
class SynthesisResult:
    """Snippets plus the phase statistics Table 2 reports."""

    snippets: list[Snippet] = field(default_factory=list)
    inhabited: bool = False
    explore_seconds: float = 0.0
    patterns_seconds: float = 0.0
    reconstruction_seconds: float = 0.0
    nodes_explored: int = 0
    edges_found: int = 0
    pattern_count: int = 0
    reconstruction_expansions: int = 0
    #: Frontier entries pushed (initial hole included) — with the packed
    #: frontier's lazy sibling chain this stays within 2x of expansions.
    reconstruction_enqueued: int = 0
    reconstruction_emitted: int = 0
    explore_truncated: bool = False
    reconstruction_truncated: bool = False

    @property
    def prove_seconds(self) -> float:
        """Explore + pattern generation — the paper's *Prove* column."""
        return self.explore_seconds + self.patterns_seconds

    @property
    def total_seconds(self) -> float:
        return self.prove_seconds + self.reconstruction_seconds

    def best(self) -> Optional[Snippet]:
        return self.snippets[0] if self.snippets else None

    def __repr__(self) -> str:
        return (f"SynthesisResult({len(self.snippets)} snippets, "
                f"inhabited={self.inhabited}, "
                f"total={self.total_seconds * 1000:.1f} ms)")


class Synthesizer:
    """A reusable synthesis engine over one environment.

    Parameters
    ----------
    environment:
        The declarations visible at the program point (Gamma_o).
    policy:
        The weight policy; defaults to the full Table 1 policy.
    config:
        Budgets and strategy switches; defaults to the paper's evaluation
        settings.
    subtypes:
        Optional subtype graph.  Edges become coercion declarations (§6);
        coercions are erased from returned snippets.
    """

    def __init__(self, environment: Environment,
                 policy: Optional[WeightPolicy] = None,
                 config: Optional[SynthesisConfig] = None,
                 subtypes: Optional[SubtypeGraph] = None):
        self.policy = policy or WeightPolicy.standard()
        self.config = config or SynthesisConfig.paper_defaults()
        self.subtype_graph = subtypes or SubtypeGraph()
        self.base_environment = environment
        self.environment = environment_with_subtyping(environment,
                                                      self.subtype_graph)
        self._env_key = self.environment.succinct_environment()
        self._type_weights = self.environment.type_weight_memo(self.policy)

    @classmethod
    def from_prepared(cls, prepared_environment: Environment,
                      base_environment: Environment,
                      subtype_graph: SubtypeGraph,
                      policy: Optional[WeightPolicy] = None,
                      config: Optional[SynthesisConfig] = None) -> "Synthesizer":
        """Build a synthesizer over an already coercion-extended environment.

        ``prepared_environment`` must be ``environment_with_subtyping(
        base_environment, subtype_graph)`` (or an equivalent).  Skipping that
        rebuild lets a long-lived engine prepare a scene once and then spin
        up per-policy synthesizers at near-zero cost, since the succinct
        signature is cached on the shared environment instance.
        """
        self = cls.__new__(cls)
        self.policy = policy or WeightPolicy.standard()
        self.config = config or SynthesisConfig.paper_defaults()
        self.subtype_graph = subtype_graph
        self.base_environment = base_environment
        self.environment = prepared_environment
        self._env_key = prepared_environment.succinct_environment()
        self._type_weights = prepared_environment.type_weight_memo(self.policy)
        return self

    # -- prover -----------------------------------------------------------

    def _priority(self, stype) -> float:
        """Memoised §5.6 request priority: w(t, Gamma_o), cached per type.

        The weight of a succinct type in the initial environment never
        changes for a given (environment, policy) pair, but exploration
        asks for it once per premise *occurrence*; the memo turns the
        repeated Select scans into dict hits.
        """
        weight = self._type_weights.get(stype)
        if weight is None:
            weight = self.policy.type_weight(stype, self.environment)
            self._type_weights[stype] = weight
        return weight

    def prove(self, goal: Type) -> tuple[SearchSpace, PatternSet]:
        """Run exploration + pattern generation for *goal*.

        Runs over the environment's scene-scoped integer-ID arena
        (:meth:`Environment.succinct_arena`), so repeated queries against
        one scene share STRIP transitions and MATCH indexes.
        """
        succinct_goal = sigma(goal)
        priority = None
        if self.config.prioritised_exploration and not self.policy.uniform:
            priority = self._priority
        arena = self.environment.succinct_arena()

        if self.config.interleaved:
            generator = IndexedPatternGenerator()
            space = explore(self._env_key, succinct_goal,
                            priority=priority,
                            max_nodes=self.config.max_explore_nodes,
                            time_limit=self.config.prover_time_limit,
                            arena=arena,
                            on_edges_indexed=generator.add_span)
            patterns = generator.result()
        else:
            space = explore(self._env_key, succinct_goal,
                            priority=priority,
                            max_nodes=self.config.max_explore_nodes,
                            time_limit=self.config.prover_time_limit,
                            arena=arena)
            patterns = generate_patterns(space)
        return space, patterns

    def is_inhabited(self, goal: Type) -> bool:
        """Decide plain type inhabitation (the provability question)."""
        space, patterns = self.prove(goal)
        return patterns.is_inhabited(space.root)

    # -- full synthesis ------------------------------------------------------

    def synthesize(self, goal: Type, n: Optional[int] = None,
                   on_snippet=None) -> SynthesisResult:
        """Synthesize the *n* best snippets of type *goal* (Fig. 5).

        ``on_snippet`` is an optional callback invoked with each
        :class:`Snippet` the moment reconstruction emits it (already
        deduplicated, ranked and rendered) — the serving layer's streaming
        mode hangs off this hook.  The callback runs on the synthesizing
        thread and must not raise; the returned result is identical with
        or without it.
        """
        limit = n if n is not None else self.config.max_snippets
        if limit <= 0:
            raise SynthesisError(f"snippet limit must be positive, got {limit}")

        result = SynthesisResult()

        prove_start = time.perf_counter()
        space, patterns = self.prove(goal)
        prove_elapsed = time.perf_counter() - prove_start

        result.nodes_explored = space.node_count()
        result.edges_found = space.edge_count()
        result.pattern_count = len(patterns)
        result.explore_truncated = space.truncated
        result.inhabited = patterns.is_inhabited(space.root)
        # In interleaved mode pattern time is folded into exploration; report
        # the split by attributing the explorer's own measure to explore and
        # the remainder to patterns.
        result.explore_seconds = min(space.elapsed_seconds, prove_elapsed)
        result.patterns_seconds = max(prove_elapsed - result.explore_seconds, 0.0)

        if not result.inhabited:
            return result

        reconstructor = Reconstructor(
            patterns, self.environment, self.policy,
            max_steps=self.config.max_reconstruction_steps,
            time_limit=self.config.reconstruction_time_limit,
            max_term_size=self.config.max_term_size)

        seen: set[LNFTerm] = set()
        snippets: list[Snippet] = []
        for raw in reconstructor.enumerate(goal):
            surface = erase_coercions(raw.term)
            canonical = canonicalize_lnf(surface)
            if canonical in seen:
                continue  # distinct coercion paths, identical visible snippet
            seen.add(canonical)
            snippet = Snippet(
                term=raw.term,
                surface_term=surface,
                weight=raw.weight,
                rank=len(snippets) + 1,
                code=self._render(surface),
            )
            snippets.append(snippet)
            if on_snippet is not None:
                on_snippet(snippet)
            if len(snippets) >= limit:
                break

        result.snippets = snippets
        result.reconstruction_seconds = reconstructor.stats.elapsed_seconds
        result.reconstruction_expansions = reconstructor.stats.expansions
        result.reconstruction_enqueued = reconstructor.stats.enqueued
        result.reconstruction_emitted = reconstructor.stats.emitted
        result.reconstruction_truncated = reconstructor.stats.truncated
        return result

    def _render(self, term: LNFTerm) -> str:
        from repro.lang.printer import render_snippet  # avoid import cycle

        return render_snippet(term, self.environment)


def synthesize(environment: Environment, goal: Type, n: int = 10,
               policy: Optional[WeightPolicy] = None,
               config: Optional[SynthesisConfig] = None,
               subtypes: Optional[SubtypeGraph] = None) -> SynthesisResult:
    """One-shot convenience wrapper: ``Synthesize(Gamma_o, tau_o, N)``."""
    synthesizer = Synthesizer(environment, policy=policy, config=config,
                              subtypes=subtypes)
    return synthesizer.synthesize(goal, n)
