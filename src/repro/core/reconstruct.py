"""Term reconstruction — GenerateT (paper §5.5, Fig. 10).

Starting from a single typed hole at the desired type, the algorithm pops
the lightest partial expression from a priority queue, finds its first hole
(leftmost-outermost, exactly the paper's ``findFirstHole``), and replaces it
with every candidate ``\\x1...xn. f [ ]r1 ... [ ]rm`` that the pattern set
licenses.  Complete expressions (no holes left) are emitted in order of
non-decreasing weight, so the first N emitted are the N best snippets.

Key invariants:

* Hole weight is zero (Fig. 10), so a partial expression's weight is a lower
  bound on the weight of every completion — which makes the best-first
  search admissible: snippets come out sorted by final weight.
* Every declaration has strictly positive weight under all policies, so
  expansion strictly increases weight and the enumeration cannot stall even
  when the solution set is infinite.
* Expansion is deterministic (first hole, declarations in environment
  order, FIFO tie-breaking), so results are reproducible.

Packed frontier
---------------

Two implementations live here.  :class:`ReferenceReconstructor` is the
direct transcription of Fig. 10: each frontier entry is a whole partial
expression tree, and every pop re-walks it (``findFirstHole``, ``sub``,
size and bound sums) — O(term size) per expansion.
:class:`Reconstructor`, the production path, runs the *same* search over a
**packed frontier**: a frontier entry is a persistent spine of immutable
:class:`_Frame` records — the path from the root to the current hole, each
frame holding its completed children (already assembled ``LNFTerm``\\ s)
and the hole types still pending to its right.  The invariants that make
this exact:

* **Holes are filled in pre-order, so the frontier is a stack.**  The
  leftmost-outermost hole is always the top frame's first pending slot;
  filling it either pushes one frame (the candidate has parameter holes)
  or completes ``LNFTerm``\\ s upward until a frame with pending slots
  remains.  A pop therefore does O(spine depth) work, never O(term size),
  and the finished term needs no ``to_lnf`` conversion pass.
* **The cursor, term size and open-holes bound ride on the heap entry.**
  Each entry carries the spine (which *is* the next-hole cursor), the
  realized weight ``g``, the incrementally maintained node count, and the
  completion bound of all non-cursor open holes (``rest``) — the three
  quantities the reference recomputes by full-tree walks.  ``rest`` is
  re-derived from the spine's pending slots in exactly the reference's
  summation order (top frame first, left to right, holes under binders
  contributing nothing), so every float equals the reference's bit for
  bit and the heap pops in the identical order.
* **Memo keys are small ints.**  Hole types key the candidate/bound tables
  by their per-process :func:`~repro.core.space.simple_type_id`; binder
  scopes are interned :class:`_Scope` records carrying their own candidate
  tables and a ``sig_id`` for the pattern-environment cache — no
  structural type or binder tuple is hashed on the steady-state path.
* **Name draws are order-identical.**  Fresh binder names are drawn at
  exactly the reference's program points (candidate-list misses and
  expansion realization), and the int-keyed caches are bijective with the
  reference's structural keys, so the two implementations consume their
  name supplies in lockstep — emitted terms match byte for byte, which is
  what ``tests/properties/test_reconstruct_parity.py`` asserts.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.generate_patterns import PatternSet
from repro.core.names import NameSupply
from repro.core.space import simple_type_id
from repro.core.succinct import sigma
from repro.core.terms import Binder, LNFTerm
from repro.core.types import Type, uncurry
from repro.core.weights import WeightPolicy


@dataclass(frozen=True)
class HoleNode:
    """A typed hole ``[ ]h : type`` in a partial expression."""

    hole_id: int
    type: Type


@dataclass(frozen=True)
class AppNode:
    """A partial expression ``\\binders. head arg1 ... argn``.

    Arguments may contain holes; a node with no holes anywhere below it is a
    complete long-normal-form term.
    """

    binders: tuple[Binder, ...]
    head: str
    arguments: tuple["PartialNode", ...]


PartialNode = Union[HoleNode, AppNode]


def is_complete(node: PartialNode) -> bool:
    """True when no hole occurs in *node*."""
    if isinstance(node, HoleNode):
        return False
    return all(is_complete(argument) for argument in node.arguments)


def hole_count(node: PartialNode) -> int:
    if isinstance(node, HoleNode):
        return 1
    return sum(hole_count(argument) for argument in node.arguments)


def find_first_hole(node: PartialNode,
                    path_binders: tuple[Binder, ...] = (),
                    ) -> Optional[tuple[tuple[Binder, ...], HoleNode]]:
    """The paper's ``findFirstHole``: leftmost-outermost hole plus the
    binders in scope on the path to it (from which the hole's environment is
    rebuilt, matching Fig. 10's Gamma_o threading)."""
    if isinstance(node, HoleNode):
        return path_binders, node
    extended = path_binders + node.binders
    for argument in node.arguments:
        found = find_first_hole(argument, extended)
        if found is not None:
            return found
    return None


def substitute_hole(node: PartialNode, hole_id: int,
                    replacement: PartialNode) -> PartialNode:
    """The paper's ``sub``: replace the hole named *hole_id*."""
    if isinstance(node, HoleNode):
        return replacement if node.hole_id == hole_id else node
    return AppNode(node.binders, node.head,
                   tuple(substitute_hole(argument, hole_id, replacement)
                         for argument in node.arguments))


def to_lnf(node: PartialNode) -> LNFTerm:
    """Convert a complete partial expression to an :class:`LNFTerm`."""
    if isinstance(node, HoleNode):
        raise ValueError("partial expression still contains holes")
    return LNFTerm(node.binders, node.head,
                   tuple(to_lnf(argument) for argument in node.arguments))


@dataclass(frozen=True)
class RawSnippet:
    """One reconstructed term (coercions still present) with its weight."""

    term: LNFTerm
    weight: float
    order: int  # 0-based emission index


@dataclass(frozen=True)
class Candidate:
    """One way to fill a hole: a declaration plus the binders it needs.

    ``added_weight`` is the weight delta the substitution contributes
    (binders + declaration; fresh holes cost zero).  Binder names and hole
    ids are instantiated lazily, per use, so candidate lists can be cached
    and shared across expansions of same-typed holes.
    """

    added_weight: float
    declaration: Declaration
    binder_types: tuple[Type, ...]
    parameter_types: tuple[Type, ...]
    #: When the filling head is one of the hole's own fresh binders (e.g.
    #: the identity ``\\x. x``), this is its position; the realized binder's
    #: fresh name is used as the head instead of ``declaration.name``.
    binder_index: Optional[int] = None
    #: Per-process :func:`~repro.core.space.simple_type_id` of each
    #: parameter type, aligned with ``parameter_types``.  Filled by the
    #: packed reconstructor so its bound tables key on small ints; the
    #: reference path leaves it empty.
    parameter_type_ids: tuple[int, ...] = ()


@dataclass
class ReconstructionStats:
    """Bookkeeping for the reconstruction phase."""

    expansions: int = 0
    enqueued: int = 0  # counts every heap push, the initial hole included
    emitted: int = 0
    truncated: bool = False
    elapsed_seconds: float = 0.0


class _Scope:
    """One binder scope (the exact path-binder tuple) with its memo tables.

    Interned per distinct binder tuple, so a heap entry's frame can reach
    its candidate tables without hashing binders: ``candidates`` and
    ``ordered`` key on the hole's ``simple_type_id`` — together the pair
    ``(type_id, scope)`` is bijective with the reference's structural
    ``(hole_type, path_binders)`` cache key.  ``binder_sigmas`` is the
    scope's binder sigma set, which keys the shared pattern-environment
    memo (scopes whose binders have the same succinct images share its
    entries).
    """

    __slots__ = ("binders", "has_binders", "binder_sigmas",
                 "environment", "candidates", "ordered")

    def __init__(self, binders: tuple[Binder, ...],
                 binder_sigmas: frozenset):
        self.binders = binders
        self.has_binders = bool(binders)
        self.binder_sigmas = binder_sigmas
        self.environment: Optional[Environment] = None  # built lazily
        self.candidates: dict[int, tuple[Candidate, ...]] = {}
        self.ordered: dict[int, tuple[Candidate, ...]] = {}


class _Frame:
    """One spine record: a partially built ``\\binders. head children``.

    ``done`` holds the already-assembled children (complete
    :class:`LNFTerm`\\ s), ``pending`` the hole types still to fill to
    their right (``pending_ids`` the matching simple-type ids).  For the
    frontier's *top* frame, ``pending[0]`` is the current (leftmost-
    outermost) hole; for ancestor frames the in-progress child subtree
    sits between ``done`` and ``pending``.  Frames are immutable and share
    parents, so sibling heap entries alias one spine safely.
    """

    __slots__ = ("parent", "binders", "head", "done", "pending",
                 "pending_ids", "scope", "under")

    def __init__(self, parent: Optional["_Frame"],
                 binders: tuple[Binder, ...], head: str,
                 done: tuple[LNFTerm, ...], pending: tuple[Type, ...],
                 pending_ids: tuple[int, ...], scope: _Scope, under: bool):
        self.parent = parent
        self.binders = binders
        self.head = head
        self.done = done
        self.pending = pending
        self.pending_ids = pending_ids
        #: Scope of this frame's own children (path binders incl. ours).
        self.scope = scope
        #: True when this frame or any ancestor introduces binders — its
        #: pending holes then contribute nothing to the open-holes bound
        #: (matching the reference's ``under_binders`` threading).
        self.under = under


class Reconstructor:
    """Best-first enumeration of complete terms from a pattern set.

    This is the packed-frontier implementation (see the module docstring);
    :class:`ReferenceReconstructor` is the retained Fig. 10 transcription
    it is byte-identical to.
    """

    def __init__(self, patterns: PatternSet, environment: Environment,
                 policy: WeightPolicy,
                 max_steps: Optional[int] = None,
                 time_limit: Optional[float] = None,
                 max_term_size: Optional[int] = None):
        self._patterns = patterns
        self._environment = environment
        self._policy = policy
        self._max_steps = max_steps
        self._time_limit = time_limit
        self._max_term_size = max_term_size
        self.stats = ReconstructionStats()
        # The scene-wide protected-name set is computed once per
        # environment and shared by reference (never copied per query).
        self._names = NameSupply(prefix="x",
                                 frozen=environment.reserved_names())
        self._seq = itertools.count()
        self._base_succinct = environment.succinct_environment()
        # Scopes interned by binder tuple; the root scope (no binders) is
        # where almost all Table-2-style reconstruction happens.
        self._root_scope = _Scope((), frozenset())
        self._root_scope.environment = environment
        self._scopes: dict[tuple[Binder, ...], _Scope] = {
            (): self._root_scope}
        # Pattern-environment memo (environment-level, shared across
        # queries): binder sigma set -> the succinct environment the
        # Fig. 10 pattern query runs over.  The base environment holds
        # thousands of types; recomputing the union per candidate-list
        # build would dominate reconstruction time.
        self._pattern_envs = environment.pattern_env_memo()
        # Root-scope candidate lists, shared across queries on this
        # environment+policy (see Environment.candidate_list_memo).
        self._shared_candidates = environment.candidate_list_memo(policy)
        # Completion-bound caches, one flat dict (keyed by simple type id)
        # per lookahead depth (the inner fixpoint loop hits these once per
        # candidate parameter).
        self._bound_levels: list[dict[int, float]] = [
            {} for _ in range(self._HEURISTIC_DEPTH + 1)]
        # Per-candidate empty-context completion bounds, keyed by identity
        # (candidates are pinned by their scope tables for our lifetime).
        self._candidate_bounds: dict[int, float] = {}
        # Declaration weights, keyed by identity; shared through the
        # environment so repeated queries over one scene stay warm.  Only
        # environment-owned declarations may enter this memo: they live
        # exactly as long as the memo does, so their ids can never be
        # reused under it (a fresh binder declaration's could).
        self._decl_weights = environment.declaration_weight_memo(policy)

    def enumerate(self, goal: Type) -> Iterator[RawSnippet]:
        """Yield complete terms of type *goal* in non-decreasing weight.

        Best-first over partial expressions with two refinements on top of
        the paper's Fig. 10 loop, both order-preserving:

        * **Lazy sibling succession** — when a hole has B candidate
          fillings only the cheapest is materialised; popping it
          re-enqueues the next sibling.  Each pop pushes at most two
          entries instead of B.

        * **Admissible completion bounds** — the queue is ordered by
          ``realized weight + sum over open holes of a lower bound on the
          hole's cheapest completion`` (a depth-bounded fixpoint over the
          candidate lists; §4's "weight of succinct types guides the
          search", taken transitively).  Because the bound never
          overestimates and is consistent, complete terms still pop in
          exact weight order, but partial expressions whose completions
          are necessarily expensive no longer flood the frontier — with
          plain zero-weight holes, a constructor with four ``int``
          parameters makes the frontier combinatorial in the number of
          ``int`` producers.

        Heap entries are ``(f, seq, frame, index, g, size, rest)`` where
        *frame* is the top of the packed spine (its first pending slot is
        the hole to fill with candidate *index*), ``g`` is the realized
        weight so far, ``size`` the node count of the partial expression
        and ``rest`` the completion bound of all *other* open holes.
        """
        start = time.perf_counter()
        queue: list = []
        stats = self.stats
        max_steps = self._max_steps
        time_limit = self._time_limit
        max_term_size = self._max_term_size
        names = self._names
        seq = self._seq
        perf_counter = time.perf_counter

        goal_id = simple_type_id(goal)
        root = _Frame(None, (), "", (), (goal,), (goal_id,),
                      self._root_scope, False)
        root_candidates = self._ordered_candidates(goal, goal_id,
                                                   self._root_scope)
        if root_candidates:
            f0 = self._completion_bound(root_candidates[0], self._root_scope)
            heapq.heappush(queue, (f0, next(seq), root, 0, 0.0, 1, 0.0))
            stats.enqueued += 1

        while queue:
            if max_steps is not None and stats.expansions >= max_steps:
                stats.truncated = True
                break
            if time_limit is not None and \
                    perf_counter() - start > time_limit:
                stats.truncated = True
                break

            _, _, frame, index, g, size, rest = heapq.heappop(queue)
            scope = frame.scope
            candidates = self._ordered_candidates(frame.pending[0],
                                                  frame.pending_ids[0], scope)

            # Lazy sibling: the next candidate for the same hole.
            if index + 1 < len(candidates):
                f_sibling = (g + rest
                             + self._completion_bound(candidates[index + 1],
                                                      scope))
                if f_sibling != math.inf:
                    heapq.heappush(queue, (f_sibling, next(seq), frame,
                                           index + 1, g, size, rest))
                    stats.enqueued += 1

            # Realize this candidate.
            stats.expansions += 1
            candidate = candidates[index]
            binders = tuple(Binder(names.fresh(), tpe)
                            for tpe in candidate.binder_types)
            head = (binders[candidate.binder_index].name
                    if candidate.binder_index is not None
                    else candidate.declaration.name)
            realized_weight = g + candidate.added_weight
            parameters = candidate.parameter_types
            realized_size = size + len(parameters)
            if max_term_size is not None and realized_size > max_term_size:
                continue

            if parameters:
                # Descend: the filled hole's frame loses its first pending
                # slot; the replacement becomes the new top frame and its
                # first parameter the new cursor.
                above = _Frame(frame.parent, frame.binders, frame.head,
                               frame.done, frame.pending[1:],
                               frame.pending_ids[1:], scope, frame.under)
                top = _Frame(above, binders, head, (), parameters,
                             candidate.parameter_type_ids,
                             scope if not binders
                             else self._scope_for(scope, binders),
                             frame.under or bool(binders))
            else:
                # A leaf: assemble completed terms upward until a frame
                # with pending slots remains (or the spine empties).
                term = LNFTerm(binders, head, ())
                walk = frame
                done = walk.done + (term,)
                pending = walk.pending[1:]
                pending_ids = walk.pending_ids[1:]
                while not pending:
                    if walk.parent is None:
                        break
                    term = LNFTerm(walk.binders, walk.head, done)
                    walk = walk.parent
                    done = walk.done + (term,)
                    pending = walk.pending
                    pending_ids = walk.pending_ids
                if not pending:  # completed the root: a full term
                    stats.emitted += 1
                    stats.elapsed_seconds = perf_counter() - start
                    yield RawSnippet(done[-1], realized_weight,
                                     stats.emitted - 1)
                    continue
                top = _Frame(walk.parent, walk.binders, walk.head, done,
                             pending, pending_ids, walk.scope, walk.under)

            next_candidates = self._ordered_candidates(top.pending[0],
                                                       top.pending_ids[0],
                                                       top.scope)
            if not next_candidates:
                continue  # this hole can never be filled
            next_rest = self._frontier_rest(top)
            if next_rest == math.inf:
                continue  # some other hole can never be filled
            f_child = (realized_weight + next_rest
                       + self._completion_bound(next_candidates[0],
                                                top.scope))
            if f_child != math.inf:
                heapq.heappush(queue, (f_child, next(seq), top, 0,
                                       realized_weight, realized_size,
                                       next_rest))
                stats.enqueued += 1

        stats.elapsed_seconds = perf_counter() - start

    # -- packed-frontier structure -------------------------------------------

    def _scope_for(self, parent: _Scope,
                   binders: tuple[Binder, ...]) -> _Scope:
        """The interned scope for ``parent.binders + binders``."""
        path = parent.binders + binders
        scope = self._scopes.get(path)
        if scope is None:
            sigmas = parent.binder_sigmas | frozenset(
                sigma(binder.type) for binder in binders)
            scope = _Scope(path, sigmas)
            self._scopes[path] = scope
        return scope

    def _scope_environment(self, scope: _Scope) -> Environment:
        """Gamma_o extended with every binder of *scope* (built once)."""
        environment = scope.environment
        if environment is None:
            decls = [Declaration(b.name, b.type, DeclKind.LAMBDA)
                     for b in scope.binders]
            environment = self._environment.extended(decls)
            scope.environment = environment
        return environment

    def _frontier_rest(self, top: _Frame) -> float:
        """Sum of completion bounds over all open holes except the cursor.

        Walks the spine's pending slots in exactly the reference's
        ``_open_holes_bound`` order — top frame first (skipping the cursor
        slot), then each ancestor, left to right — and skips frames under
        binders, whose holes the reference zeroes.  Both the visit order
        (name draws happen inside cold ``_hole_bound`` calls) and the
        float summation order are therefore identical to a full-tree walk.
        """
        total = 0.0
        hole_bound = self._hole_bound
        frame: Optional[_Frame] = top
        first_index = 1  # skip the cursor on the top frame only
        while frame is not None:
            if not frame.under:
                pending = frame.pending
                pending_ids = frame.pending_ids
                for position in range(first_index, len(pending)):
                    total += hole_bound(pending[position],
                                        pending_ids[position])
            first_index = 0
            frame = frame.parent
        return total

    # -- admissible completion bounds ---------------------------------------

    #: Lookahead depth of the completion-bound fixpoint.  Any depth is
    #: admissible (deeper = tighter); 4 covers the nesting the benchmarks
    #: exhibit without noticeable precomputation cost.
    _HEURISTIC_DEPTH = 4

    def _ordered_candidates(self, hole_type: Type, hole_type_id: int,
                            scope: _Scope) -> tuple[Candidate, ...]:
        """Candidates sorted by completion bound.

        The lazy sibling chain walks candidates in this order, so the f
        values along the chain are non-decreasing — sorting by bare added
        weight instead would bury a cheap-completion candidate behind ties
        whose completions are expensive, breaking emission order.  Kept
        separate from :meth:`_candidates` because the bound computation
        itself consumes raw candidate lists (sorting there would recurse).
        """
        cached = scope.ordered.get(hole_type_id)
        if cached is not None:
            return cached
        ordered = sorted(
            self._candidates(hole_type, hole_type_id, scope),
            key=lambda c: self._completion_bound(c, scope))
        result = tuple(ordered)
        scope.ordered[hole_type_id] = result
        return result

    def _completion_bound(self, candidate: Candidate,
                          scope: _Scope) -> float:
        """Lower bound on the weight this candidate adds, completions
        of its fresh parameter holes included.

        Memoised per candidate: only two values are ever possible (the
        bare added weight under binders, the parameter-summed bound in the
        empty context), and the lazy-sibling chain re-asks on every pop.
        """
        if scope.has_binders or candidate.binder_types:
            # Under binders (or introducing them) cheaper binder-headed
            # completions may exist that the empty-context tables cannot
            # see; stay conservative.
            return candidate.added_weight
        key = id(candidate)
        bound = self._candidate_bounds.get(key)
        if bound is None:
            total = 0.0
            for parameter, parameter_id in zip(candidate.parameter_types,
                                               candidate.parameter_type_ids):
                total += self._hole_bound(parameter, parameter_id)
            bound = candidate.added_weight + total
            self._candidate_bounds[key] = bound
        return bound

    def _hole_bound(self, hole_type: Type, hole_type_id: Optional[int] = None,
                    depth: Optional[int] = None) -> float:
        """Lower bound on the cheapest completion of an empty-context hole."""
        if hole_type_id is None:
            hole_type_id = simple_type_id(hole_type)
        if depth is None:
            depth = self._HEURISTIC_DEPTH
        if depth <= 0:
            return 0.0
        levels = self._bound_levels
        while len(levels) <= depth:        # robust to overridden lookahead
            levels.append({})
        level = levels[depth]
        cached = level.get(hole_type_id)
        if cached is not None:
            return cached
        level[hole_type_id] = 0.0  # cycle guard (admissible placeholder)
        best = math.inf
        next_depth = depth - 1
        next_level = self._bound_levels[next_depth] if next_depth > 0 else None
        for candidate in self._candidates(hole_type, hole_type_id,
                                          self._root_scope):
            value = candidate.added_weight
            if not candidate.binder_types and next_level is not None:
                # Inlined recursion fast path: one dict hit per parameter
                # (depth 0 contributes nothing, so the loop is skipped).
                for parameter, parameter_id in zip(
                        candidate.parameter_types,
                        candidate.parameter_type_ids):
                    bound = next_level.get(parameter_id)
                    if bound is None:
                        bound = self._hole_bound(parameter, parameter_id,
                                                 next_depth)
                    value += bound
            if value < best:
                best = value
        level[hole_type_id] = best
        return best

    def _candidates(self, hole_type: Type, hole_type_id: int,
                    scope: _Scope) -> tuple[Candidate, ...]:
        """All fillings for a hole of *hole_type* under *scope*.

        Sorted by added weight (stable on discovery order), and cached at
        two levels: per scope for this query, and — for the empty binder
        scope — across queries on the shared environment memo, keyed by
        the exact pattern slice the list is derived from.  A cross-query
        hit still consumes the fresh names a cold build would have drawn,
        so the supply stays in lockstep with the reference walk.
        """
        cached = scope.candidates.get(hole_type_id)
        if cached is not None:
            return cached

        argument_types, result = uncurry(hole_type)
        if scope.has_binders or argument_types:
            binder_sigmas = scope.binder_sigmas | frozenset(
                sigma(tpe) for tpe in argument_types)
            pattern_env = self._pattern_envs.get(binder_sigmas)
            if pattern_env is None:
                pattern_env = self._base_succinct | binder_sigmas
                self._pattern_envs[binder_sigmas] = pattern_env
        else:
            pattern_env = self._base_succinct
        pattern_slice = self._patterns.lookup(pattern_env, result.name)

        shared_key = None
        if not scope.has_binders:
            shared_key = (hole_type_id, pattern_slice)
            entry = self._shared_candidates.get(shared_key)
            if entry is not None:
                names_needed, result_tuple = entry
                for _ in range(names_needed):
                    self._names.fresh()
                scope.candidates[hole_type_id] = result_tuple
                return result_tuple

        hole_env = self._scope_environment(scope)
        binders = tuple(Binder(self._names.fresh(), tpe)
                        for tpe in argument_types)
        binder_decls = [Declaration(b.name, b.type, DeclKind.LAMBDA)
                        for b in binders]
        inner_env = hole_env.extended(binder_decls) if binder_decls else hole_env
        binder_cost = len(binders) * self._policy.binder_weight()

        probe_positions = {binder.name: position
                           for position, binder in enumerate(binders)}
        found: list[Candidate] = []
        decl_weights = self._decl_weights
        declaration_weight = self._policy.declaration_weight
        environment_lookup = self._environment.lookup
        for pattern in pattern_slice:
            wanted = pattern.succinct_type()
            for decl in inner_env.select(wanted):
                parameter_types, _ = uncurry(decl.type)
                weight = decl_weights.get(id(decl))
                if weight is None:
                    weight = declaration_weight(decl)
                    if environment_lookup(decl.name) is decl:
                        decl_weights[id(decl)] = weight
                found.append(Candidate(
                    added_weight=binder_cost + weight,
                    declaration=decl,
                    binder_types=tuple(argument_types),
                    parameter_types=parameter_types,
                    binder_index=probe_positions.get(decl.name),
                    parameter_type_ids=tuple(simple_type_id(tpe)
                                             for tpe in parameter_types),
                ))
        found.sort(key=lambda candidate: candidate.added_weight)
        result_tuple = tuple(found)
        if shared_key is not None:
            self._shared_candidates[shared_key] = (len(argument_types),
                                                   result_tuple)
        scope.candidates[hole_type_id] = result_tuple
        return result_tuple


class ReferenceReconstructor:
    """The Fig. 10 transcription: whole-tree frontier entries.

    Retained as the executable specification the packed
    :class:`Reconstructor` is verified against (byte-identical terms,
    weights, emission order, stats and truncation —
    ``tests/properties/test_reconstruct_parity.py``).  Every pop re-walks
    the popped partial expression: ``findFirstHole``, ``sub``, the size
    measure and the open-holes bound are all O(term size).
    """

    def __init__(self, patterns: PatternSet, environment: Environment,
                 policy: WeightPolicy,
                 max_steps: Optional[int] = None,
                 time_limit: Optional[float] = None,
                 max_term_size: Optional[int] = None):
        self._patterns = patterns
        self._environment = environment
        self._policy = policy
        self._max_steps = max_steps
        self._time_limit = time_limit
        self._max_term_size = max_term_size
        self.stats = ReconstructionStats()
        self._names = NameSupply(prefix="x",
                                 frozen=environment.reserved_names())
        self._hole_ids = itertools.count()
        self._seq = itertools.count()
        self._base_succinct = environment.succinct_environment()
        # Pattern-environment cache: binder succinct types in scope -> env key.
        self._pattern_env_cache: dict[frozenset, frozenset] = {}
        # Candidate cache: (hole type, binders in scope) -> sorted fillings.
        self._candidate_cache: dict[tuple, tuple[Candidate, ...]] = {}
        # Completion-bound caches, one flat dict per lookahead depth.
        self._bound_levels: list[dict[Type, float]] = [
            {} for _ in range(self._HEURISTIC_DEPTH + 1)]
        self._candidate_bounds: dict[int, float] = {}
        self._decl_weights = environment.declaration_weight_memo(policy)
        # Candidates re-sorted by completion bound (what enumeration walks).
        self._ordered_cache: dict[tuple, tuple[Candidate, ...]] = {}

    def enumerate(self, goal: Type) -> Iterator[RawSnippet]:
        """Yield complete terms of type *goal* in non-decreasing weight.

        Heap entries are ``(f, seq, expression, hole, path, index, g, rest)``
        where *expression* still contains *hole* (to be filled with
        candidate *index*), ``g`` is the realized weight so far and
        ``rest`` is the completion bound of all *other* open holes.
        """
        start = time.perf_counter()
        queue: list = []

        root = HoleNode(next(self._hole_ids), goal)
        root_candidates = self._ordered_candidates(goal, ())
        if root_candidates:
            f0 = self._completion_bound(root_candidates[0], ())
            heapq.heappush(queue, (f0, next(self._seq), root, root, (), 0,
                                   0.0, 0.0))
            self.stats.enqueued += 1

        while queue:
            if self._max_steps is not None and \
                    self.stats.expansions >= self._max_steps:
                self.stats.truncated = True
                break
            if self._time_limit is not None and \
                    time.perf_counter() - start > self._time_limit:
                self.stats.truncated = True
                break

            _, _, expression, hole, path_binders, index, g, rest = \
                heapq.heappop(queue)
            candidates = self._ordered_candidates(hole.type, path_binders)

            # Lazy sibling: the next candidate for the same hole.
            if index + 1 < len(candidates):
                f_sibling = (g + rest
                             + self._completion_bound(candidates[index + 1],
                                                      path_binders))
                if f_sibling != math.inf:
                    heapq.heappush(queue, (f_sibling, next(self._seq),
                                           expression, hole, path_binders,
                                           index + 1, g, rest))
                    self.stats.enqueued += 1

            # Realize this candidate.
            self.stats.expansions += 1
            candidate = candidates[index]
            binders = tuple(Binder(self._names.fresh(), tpe)
                            for tpe in candidate.binder_types)
            holes = tuple(HoleNode(next(self._hole_ids), tpe)
                          for tpe in candidate.parameter_types)
            head = (binders[candidate.binder_index].name
                    if candidate.binder_index is not None
                    else candidate.declaration.name)
            replacement = AppNode(binders, head, holes)
            realized = substitute_hole(expression, hole.hole_id, replacement)
            realized_weight = g + candidate.added_weight
            if self._max_term_size is not None and \
                    _node_size(realized) > self._max_term_size:
                continue

            found = find_first_hole(realized)
            if found is None:
                self.stats.emitted += 1
                self.stats.elapsed_seconds = time.perf_counter() - start
                yield RawSnippet(to_lnf(realized), realized_weight,
                                 self.stats.emitted - 1)
                continue

            next_path, next_hole = found
            next_candidates = self._ordered_candidates(next_hole.type, next_path)
            if not next_candidates:
                continue  # this hole can never be filled
            next_rest = self._open_holes_bound(realized, next_hole.hole_id)
            if next_rest == math.inf:
                continue  # some other hole can never be filled
            f_child = (realized_weight + next_rest
                       + self._completion_bound(next_candidates[0], next_path))
            if f_child != math.inf:
                heapq.heappush(queue, (f_child, next(self._seq), realized,
                                       next_hole, next_path, 0,
                                       realized_weight, next_rest))
                self.stats.enqueued += 1

        self.stats.elapsed_seconds = time.perf_counter() - start

    # -- admissible completion bounds ---------------------------------------

    _HEURISTIC_DEPTH = 4

    def _ordered_candidates(self, hole_type: Type,
                            path_binders: tuple[Binder, ...],
                            ) -> tuple[Candidate, ...]:
        """Candidates sorted by completion bound."""
        key = (hole_type, path_binders)
        cached = self._ordered_cache.get(key)
        if cached is not None:
            return cached
        ordered = sorted(
            self._candidates(hole_type, path_binders),
            key=lambda c: self._completion_bound(c, path_binders))
        result = tuple(ordered)
        self._ordered_cache[key] = result
        return result

    def _completion_bound(self, candidate: Candidate,
                          path_binders: tuple[Binder, ...]) -> float:
        """Lower bound on the weight this candidate adds, completions
        of its fresh parameter holes included."""
        if path_binders or candidate.binder_types:
            return candidate.added_weight
        key = id(candidate)
        bound = self._candidate_bounds.get(key)
        if bound is None:
            bound = candidate.added_weight + sum(
                self._hole_bound(parameter)
                for parameter in candidate.parameter_types)
            self._candidate_bounds[key] = bound
        return bound

    def _hole_bound(self, hole_type: Type, depth: Optional[int] = None) -> float:
        """Lower bound on the cheapest completion of an empty-context hole."""
        if depth is None:
            depth = self._HEURISTIC_DEPTH
        if depth <= 0:
            return 0.0
        levels = self._bound_levels
        while len(levels) <= depth:        # robust to overridden lookahead
            levels.append({})
        level = levels[depth]
        cached = level.get(hole_type)
        if cached is not None:
            return cached
        level[hole_type] = 0.0  # cycle guard (admissible placeholder)
        best = math.inf
        next_depth = depth - 1
        next_level = self._bound_levels[next_depth] if next_depth > 0 else None
        for candidate in self._candidates(hole_type, ()):
            value = candidate.added_weight
            if not candidate.binder_types and next_level is not None:
                for parameter in candidate.parameter_types:
                    bound = next_level.get(parameter)
                    if bound is None:
                        bound = self._hole_bound(parameter, next_depth)
                    value += bound
            if value < best:
                best = value
        level[hole_type] = best
        return best

    def _open_holes_bound(self, node: PartialNode, exclude_id: int,
                          under_binders: bool = False) -> float:
        """Sum of completion bounds over all open holes except *exclude_id*."""
        if isinstance(node, HoleNode):
            if node.hole_id == exclude_id:
                return 0.0
            return 0.0 if under_binders else self._hole_bound(node.type)
        inner = under_binders or bool(node.binders)
        return sum(self._open_holes_bound(argument, exclude_id, inner)
                   for argument in node.arguments)

    def _candidates(self, hole_type: Type,
                    path_binders: tuple[Binder, ...]) -> tuple[Candidate, ...]:
        """All fillings for a hole of *hole_type* under *path_binders*."""
        key = (hole_type, path_binders)
        cached = self._candidate_cache.get(key)
        if cached is not None:
            return cached

        hole_env = self._hole_environment(path_binders)
        argument_types, result = uncurry(hole_type)
        binders = tuple(Binder(self._names.fresh(), tpe)
                        for tpe in argument_types)
        binder_decls = [Declaration(b.name, b.type, DeclKind.LAMBDA)
                        for b in binders]
        inner_env = hole_env.extended(binder_decls) if binder_decls else hole_env

        binder_sigmas = frozenset(sigma(b.type)
                                  for b in path_binders + binders)
        pattern_env = self._pattern_env_cache.get(binder_sigmas)
        if pattern_env is None:
            pattern_env = (self._base_succinct | binder_sigmas
                           if binder_sigmas else self._base_succinct)
            self._pattern_env_cache[binder_sigmas] = pattern_env
        binder_cost = len(binders) * self._policy.binder_weight()

        probe_positions = {binder.name: position
                           for position, binder in enumerate(binders)}
        found: list[Candidate] = []
        decl_weights = self._decl_weights
        declaration_weight = self._policy.declaration_weight
        environment_lookup = self._environment.lookup
        for pattern in self._patterns.lookup(pattern_env, result.name):
            wanted = pattern.succinct_type()
            for decl in inner_env.select(wanted):
                parameter_types, _ = uncurry(decl.type)
                weight = decl_weights.get(id(decl))
                if weight is None:
                    weight = declaration_weight(decl)
                    if environment_lookup(decl.name) is decl:
                        decl_weights[id(decl)] = weight
                found.append(Candidate(
                    added_weight=binder_cost + weight,
                    declaration=decl,
                    binder_types=tuple(argument_types),
                    parameter_types=parameter_types,
                    binder_index=probe_positions.get(decl.name),
                ))
        found.sort(key=lambda candidate: candidate.added_weight)
        result_tuple = tuple(found)
        self._candidate_cache[key] = result_tuple
        return result_tuple

    def _hole_environment(self, path_binders: tuple[Binder, ...]) -> Environment:
        """Gamma_o extended with every binder in scope at the hole."""
        if not path_binders:
            return self._environment
        decls = [Declaration(b.name, b.type, DeclKind.LAMBDA)
                 for b in path_binders]
        return self._environment.extended(decls)


def _node_size(node: PartialNode) -> int:
    if isinstance(node, HoleNode):
        return 1
    return 1 + sum(_node_size(argument) for argument in node.arguments)


def reconstruct(patterns: PatternSet, environment: Environment, goal: Type,
                policy: WeightPolicy, limit: Optional[int] = None,
                max_steps: Optional[int] = None,
                time_limit: Optional[float] = None,
                max_term_size: Optional[int] = None) -> list[RawSnippet]:
    """Run GenerateT and return at most *limit* snippets, best first."""
    reconstructor = Reconstructor(patterns, environment, policy,
                                  max_steps=max_steps, time_limit=time_limit,
                                  max_term_size=max_term_size)
    return _collect(reconstructor, goal, limit)


def reconstruct_reference(patterns: PatternSet, environment: Environment,
                          goal: Type, policy: WeightPolicy,
                          limit: Optional[int] = None,
                          max_steps: Optional[int] = None,
                          time_limit: Optional[float] = None,
                          max_term_size: Optional[int] = None,
                          ) -> list[RawSnippet]:
    """GenerateT over the reference (whole-tree) frontier, best first."""
    reconstructor = ReferenceReconstructor(
        patterns, environment, policy, max_steps=max_steps,
        time_limit=time_limit, max_term_size=max_term_size)
    return _collect(reconstructor, goal, limit)


def _collect(reconstructor, goal: Type,
             limit: Optional[int]) -> list[RawSnippet]:
    snippets: list[RawSnippet] = []
    for snippet in reconstructor.enumerate(goal):
        snippets.append(snippet)
        if limit is not None and len(snippets) >= limit:
            break
    return snippets
