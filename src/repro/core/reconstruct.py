"""Term reconstruction — GenerateT (paper §5.5, Fig. 10).

Starting from a single typed hole at the desired type, the algorithm pops
the lightest partial expression from a priority queue, finds its first hole
(leftmost-outermost, exactly the paper's ``findFirstHole``), and replaces it
with every candidate ``\\x1...xn. f [ ]r1 ... [ ]rm`` that the pattern set
licenses.  Complete expressions (no holes left) are emitted in order of
non-decreasing weight, so the first N emitted are the N best snippets.

Key invariants:

* Hole weight is zero (Fig. 10), so a partial expression's weight is a lower
  bound on the weight of every completion — which makes the best-first
  search admissible: snippets come out sorted by final weight.
* Every declaration has strictly positive weight under all policies, so
  expansion strictly increases weight and the enumeration cannot stall even
  when the solution set is infinite.
* Expansion is deterministic (first hole, declarations in environment
  order, FIFO tie-breaking), so results are reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.generate_patterns import PatternSet
from repro.core.names import NameSupply
from repro.core.succinct import SuccinctType, sigma
from repro.core.terms import Binder, LNFTerm
from repro.core.types import Type, uncurry
from repro.core.weights import HOLE_WEIGHT, WeightPolicy


@dataclass(frozen=True)
class HoleNode:
    """A typed hole ``[ ]h : type`` in a partial expression."""

    hole_id: int
    type: Type


@dataclass(frozen=True)
class AppNode:
    """A partial expression ``\\binders. head arg1 ... argn``.

    Arguments may contain holes; a node with no holes anywhere below it is a
    complete long-normal-form term.
    """

    binders: tuple[Binder, ...]
    head: str
    arguments: tuple["PartialNode", ...]


PartialNode = Union[HoleNode, AppNode]


def is_complete(node: PartialNode) -> bool:
    """True when no hole occurs in *node*."""
    if isinstance(node, HoleNode):
        return False
    return all(is_complete(argument) for argument in node.arguments)


def hole_count(node: PartialNode) -> int:
    if isinstance(node, HoleNode):
        return 1
    return sum(hole_count(argument) for argument in node.arguments)


def find_first_hole(node: PartialNode,
                    path_binders: tuple[Binder, ...] = (),
                    ) -> Optional[tuple[tuple[Binder, ...], HoleNode]]:
    """The paper's ``findFirstHole``: leftmost-outermost hole plus the
    binders in scope on the path to it (from which the hole's environment is
    rebuilt, matching Fig. 10's Gamma_o threading)."""
    if isinstance(node, HoleNode):
        return path_binders, node
    extended = path_binders + node.binders
    for argument in node.arguments:
        found = find_first_hole(argument, extended)
        if found is not None:
            return found
    return None


def substitute_hole(node: PartialNode, hole_id: int,
                    replacement: PartialNode) -> PartialNode:
    """The paper's ``sub``: replace the hole named *hole_id*."""
    if isinstance(node, HoleNode):
        return replacement if node.hole_id == hole_id else node
    return AppNode(node.binders, node.head,
                   tuple(substitute_hole(argument, hole_id, replacement)
                         for argument in node.arguments))


def to_lnf(node: PartialNode) -> LNFTerm:
    """Convert a complete partial expression to an :class:`LNFTerm`."""
    if isinstance(node, HoleNode):
        raise ValueError("partial expression still contains holes")
    return LNFTerm(node.binders, node.head,
                   tuple(to_lnf(argument) for argument in node.arguments))


@dataclass(frozen=True)
class RawSnippet:
    """One reconstructed term (coercions still present) with its weight."""

    term: LNFTerm
    weight: float
    order: int  # 0-based emission index


@dataclass(frozen=True)
class Candidate:
    """One way to fill a hole: a declaration plus the binders it needs.

    ``added_weight`` is the weight delta the substitution contributes
    (binders + declaration; fresh holes cost zero).  Binder names and hole
    ids are instantiated lazily, per use, so candidate lists can be cached
    and shared across expansions of same-typed holes.
    """

    added_weight: float
    declaration: Declaration
    binder_types: tuple[Type, ...]
    parameter_types: tuple[Type, ...]
    #: When the filling head is one of the hole's own fresh binders (e.g.
    #: the identity ``\\x. x``), this is its position; the realized binder's
    #: fresh name is used as the head instead of ``declaration.name``.
    binder_index: Optional[int] = None


@dataclass
class ReconstructionStats:
    """Bookkeeping for the reconstruction phase."""

    expansions: int = 0
    enqueued: int = 1  # the initial hole
    emitted: int = 0
    truncated: bool = False
    elapsed_seconds: float = 0.0


class Reconstructor:
    """Best-first enumeration of complete terms from a pattern set."""

    def __init__(self, patterns: PatternSet, environment: Environment,
                 policy: WeightPolicy,
                 max_steps: Optional[int] = None,
                 time_limit: Optional[float] = None,
                 max_term_size: Optional[int] = None):
        self._patterns = patterns
        self._environment = environment
        self._policy = policy
        self._max_steps = max_steps
        self._time_limit = time_limit
        self._max_term_size = max_term_size
        self.stats = ReconstructionStats()
        reserved = [decl.name for decl in environment.declarations()]
        self._names = NameSupply(prefix="x", reserved=reserved)
        self._hole_ids = itertools.count()
        self._seq = itertools.count()
        self._base_succinct = environment.succinct_environment()
        # Pattern-environment cache: binder succinct types in scope -> env key.
        # The base environment holds thousands of types; recomputing the
        # union per expansion would dominate reconstruction time.
        self._pattern_env_cache: dict[frozenset, frozenset] = {}
        # Candidate cache: (hole type, binders in scope) -> sorted fillings.
        self._candidate_cache: dict[tuple, tuple[Candidate, ...]] = {}
        # Completion-bound caches, one flat dict per lookahead depth (the
        # inner fixpoint loop hits these once per candidate parameter).
        self._bound_levels: list[dict[Type, float]] = [
            {} for _ in range(self._HEURISTIC_DEPTH + 1)]
        # Per-candidate empty-context completion bounds, keyed by identity
        # (candidates are pinned by _candidate_cache for our lifetime).
        self._candidate_bounds: dict[int, float] = {}
        # Declaration weights, keyed by identity; shared through the
        # environment so repeated queries over one scene stay warm.  Only
        # environment-owned declarations may enter this memo: they live
        # exactly as long as the memo does, so their ids can never be
        # reused under it (a fresh binder declaration's could).
        self._decl_weights = environment.declaration_weight_memo(policy)
        # Candidates re-sorted by completion bound (what enumeration walks).
        self._ordered_cache: dict[tuple, tuple[Candidate, ...]] = {}

    def enumerate(self, goal: Type) -> Iterator[RawSnippet]:
        """Yield complete terms of type *goal* in non-decreasing weight.

        Best-first over partial expressions with two refinements on top of
        the paper's Fig. 10 loop, both order-preserving:

        * **Lazy sibling succession** — when a hole has B candidate
          fillings only the cheapest is materialised; popping it
          re-enqueues the next sibling.  Each pop pushes at most two
          entries instead of B.

        * **Admissible completion bounds** — the queue is ordered by
          ``realized weight + sum over open holes of a lower bound on the
          hole's cheapest completion`` (a depth-bounded fixpoint over the
          candidate lists; §4's "weight of succinct types guides the
          search", taken transitively).  Because the bound never
          overestimates and is consistent, complete terms still pop in
          exact weight order, but partial expressions whose completions
          are necessarily expensive no longer flood the frontier — with
          plain zero-weight holes, a constructor with four ``int``
          parameters makes the frontier combinatorial in the number of
          ``int`` producers.

        Heap entries are ``(f, seq, expression, hole, path, index, g, rest)``
        where *expression* still contains *hole* (to be filled with
        candidate *index*), ``g`` is the realized weight so far and
        ``rest`` is the completion bound of all *other* open holes.
        """
        start = time.perf_counter()
        queue: list = []

        root = HoleNode(next(self._hole_ids), goal)
        root_candidates = self._ordered_candidates(goal, ())
        if root_candidates:
            f0 = self._completion_bound(root_candidates[0], ())
            heapq.heappush(queue, (f0, next(self._seq), root, root, (), 0,
                                   0.0, 0.0))

        while queue:
            if self._max_steps is not None and \
                    self.stats.expansions >= self._max_steps:
                self.stats.truncated = True
                break
            if self._time_limit is not None and \
                    time.perf_counter() - start > self._time_limit:
                self.stats.truncated = True
                break

            _, _, expression, hole, path_binders, index, g, rest = \
                heapq.heappop(queue)
            candidates = self._ordered_candidates(hole.type, path_binders)

            # Lazy sibling: the next candidate for the same hole.
            if index + 1 < len(candidates):
                f_sibling = (g + rest
                             + self._completion_bound(candidates[index + 1],
                                                      path_binders))
                if f_sibling != math.inf:
                    heapq.heappush(queue, (f_sibling, next(self._seq),
                                           expression, hole, path_binders,
                                           index + 1, g, rest))
                    self.stats.enqueued += 1

            # Realize this candidate.
            self.stats.expansions += 1
            candidate = candidates[index]
            binders = tuple(Binder(self._names.fresh(), tpe)
                            for tpe in candidate.binder_types)
            holes = tuple(HoleNode(next(self._hole_ids), tpe)
                          for tpe in candidate.parameter_types)
            head = (binders[candidate.binder_index].name
                    if candidate.binder_index is not None
                    else candidate.declaration.name)
            replacement = AppNode(binders, head, holes)
            realized = substitute_hole(expression, hole.hole_id, replacement)
            realized_weight = g + candidate.added_weight
            if self._max_term_size is not None and \
                    _node_size(realized) > self._max_term_size:
                continue

            found = find_first_hole(realized)
            if found is None:
                self.stats.emitted += 1
                self.stats.elapsed_seconds = time.perf_counter() - start
                yield RawSnippet(to_lnf(realized), realized_weight,
                                 self.stats.emitted - 1)
                continue

            next_path, next_hole = found
            next_candidates = self._ordered_candidates(next_hole.type, next_path)
            if not next_candidates:
                continue  # this hole can never be filled
            next_rest = self._open_holes_bound(realized, next_hole.hole_id)
            if next_rest == math.inf:
                continue  # some other hole can never be filled
            f_child = (realized_weight + next_rest
                       + self._completion_bound(next_candidates[0], next_path))
            if f_child != math.inf:
                heapq.heappush(queue, (f_child, next(self._seq), realized,
                                       next_hole, next_path, 0,
                                       realized_weight, next_rest))
                self.stats.enqueued += 1

        self.stats.elapsed_seconds = time.perf_counter() - start

    # -- admissible completion bounds ---------------------------------------

    #: Lookahead depth of the completion-bound fixpoint.  Any depth is
    #: admissible (deeper = tighter); 4 covers the nesting the benchmarks
    #: exhibit without noticeable precomputation cost.
    _HEURISTIC_DEPTH = 4

    def _ordered_candidates(self, hole_type: Type,
                            path_binders: tuple[Binder, ...],
                            ) -> tuple[Candidate, ...]:
        """Candidates sorted by completion bound.

        The lazy sibling chain walks candidates in this order, so the f
        values along the chain are non-decreasing — sorting by bare added
        weight instead would bury a cheap-completion candidate behind ties
        whose completions are expensive, breaking emission order.  Kept
        separate from :meth:`_candidates` because the bound computation
        itself consumes raw candidate lists (sorting there would recurse).
        """
        key = (hole_type, path_binders)
        cached = self._ordered_cache.get(key)
        if cached is not None:
            return cached
        ordered = sorted(
            self._candidates(hole_type, path_binders),
            key=lambda c: self._completion_bound(c, path_binders))
        result = tuple(ordered)
        self._ordered_cache[key] = result
        return result

    def _completion_bound(self, candidate: Candidate,
                          path_binders: tuple[Binder, ...]) -> float:
        """Lower bound on the weight this candidate adds, completions
        of its fresh parameter holes included.

        Memoised per candidate: only two values are ever possible (the
        bare added weight under binders, the parameter-summed bound in the
        empty context), and the lazy-sibling chain re-asks on every pop.
        """
        if path_binders or candidate.binder_types:
            # Under binders (or introducing them) cheaper binder-headed
            # completions may exist that the empty-context tables cannot
            # see; stay conservative.
            return candidate.added_weight
        key = id(candidate)
        bound = self._candidate_bounds.get(key)
        if bound is None:
            bound = candidate.added_weight + sum(
                self._hole_bound(parameter)
                for parameter in candidate.parameter_types)
            self._candidate_bounds[key] = bound
        return bound

    def _hole_bound(self, hole_type: Type, depth: Optional[int] = None) -> float:
        """Lower bound on the cheapest completion of an empty-context hole."""
        if depth is None:
            depth = self._HEURISTIC_DEPTH
        if depth <= 0:
            return 0.0
        levels = self._bound_levels
        while len(levels) <= depth:        # robust to overridden lookahead
            levels.append({})
        level = levels[depth]
        cached = level.get(hole_type)
        if cached is not None:
            return cached
        level[hole_type] = 0.0  # cycle guard (admissible placeholder)
        best = math.inf
        next_depth = depth - 1
        next_level = self._bound_levels[next_depth] if next_depth > 0 else None
        for candidate in self._candidates(hole_type, ()):
            value = candidate.added_weight
            if not candidate.binder_types and next_level is not None:
                # Inlined recursion fast path: one dict hit per parameter
                # (depth 0 contributes nothing, so the loop is skipped).
                for parameter in candidate.parameter_types:
                    bound = next_level.get(parameter)
                    if bound is None:
                        bound = self._hole_bound(parameter, next_depth)
                    value += bound
            if value < best:
                best = value
        level[hole_type] = best
        return best

    def _open_holes_bound(self, node: PartialNode, exclude_id: int,
                          under_binders: bool = False) -> float:
        """Sum of completion bounds over all open holes except *exclude_id*."""
        if isinstance(node, HoleNode):
            if node.hole_id == exclude_id:
                return 0.0
            return 0.0 if under_binders else self._hole_bound(node.type)
        inner = under_binders or bool(node.binders)
        return sum(self._open_holes_bound(argument, exclude_id, inner)
                   for argument in node.arguments)

    def _candidates(self, hole_type: Type,
                    path_binders: tuple[Binder, ...]) -> tuple[Candidate, ...]:
        """All fillings for a hole of *hole_type* under *path_binders*.

        Sorted by added weight (stable on discovery order), and cached: the
        result depends only on the hole's type and the binders in scope.
        """
        key = (hole_type, path_binders)
        cached = self._candidate_cache.get(key)
        if cached is not None:
            return cached

        hole_env = self._hole_environment(path_binders)
        argument_types, result = uncurry(hole_type)
        binders = tuple(Binder(self._names.fresh(), tpe)
                        for tpe in argument_types)
        binder_decls = [Declaration(b.name, b.type, DeclKind.LAMBDA)
                        for b in binders]
        inner_env = hole_env.extended(binder_decls) if binder_decls else hole_env

        binder_sigmas = frozenset(sigma(b.type)
                                  for b in path_binders + binders)
        pattern_env = self._pattern_env_cache.get(binder_sigmas)
        if pattern_env is None:
            pattern_env = (self._base_succinct | binder_sigmas
                           if binder_sigmas else self._base_succinct)
            self._pattern_env_cache[binder_sigmas] = pattern_env
        binder_cost = len(binders) * self._policy.binder_weight()

        probe_positions = {binder.name: position
                           for position, binder in enumerate(binders)}
        found: list[Candidate] = []
        decl_weights = self._decl_weights
        declaration_weight = self._policy.declaration_weight
        environment_lookup = self._environment.lookup
        for pattern in self._patterns.lookup(pattern_env, result.name):
            wanted = pattern.succinct_type()
            for decl in inner_env.select(wanted):
                parameter_types, _ = uncurry(decl.type)
                weight = decl_weights.get(id(decl))
                if weight is None:
                    weight = declaration_weight(decl)
                    if environment_lookup(decl.name) is decl:
                        decl_weights[id(decl)] = weight
                found.append(Candidate(
                    added_weight=binder_cost + weight,
                    declaration=decl,
                    binder_types=tuple(argument_types),
                    parameter_types=parameter_types,
                    binder_index=probe_positions.get(decl.name),
                ))
        found.sort(key=lambda candidate: candidate.added_weight)
        result_tuple = tuple(found)
        self._candidate_cache[key] = result_tuple
        return result_tuple

    def _hole_environment(self, path_binders: tuple[Binder, ...]) -> Environment:
        """Gamma_o extended with every binder in scope at the hole."""
        if not path_binders:
            return self._environment
        decls = [Declaration(b.name, b.type, DeclKind.LAMBDA)
                 for b in path_binders]
        return self._environment.extended(decls)


def _node_size(node: PartialNode) -> int:
    if isinstance(node, HoleNode):
        return 1
    return 1 + sum(_node_size(argument) for argument in node.arguments)


def reconstruct(patterns: PatternSet, environment: Environment, goal: Type,
                policy: WeightPolicy, limit: Optional[int] = None,
                max_steps: Optional[int] = None,
                time_limit: Optional[float] = None,
                max_term_size: Optional[int] = None) -> list[RawSnippet]:
    """Run GenerateT and return at most *limit* snippets, best first."""
    reconstructor = Reconstructor(patterns, environment, policy,
                                  max_steps=max_steps, time_limit=time_limit,
                                  max_term_size=max_term_size)
    snippets: list[RawSnippet] = []
    for snippet in reconstructor.enumerate(goal):
        snippets.append(snippet)
        if limit is not None and len(snippets) >= limit:
            break
    return snippets
