"""Subtyping via coercion functions (paper §6).

The paper models every subtype edge ``v1 <: v2`` on basic types by adding a
fresh coercion declaration ``c12 : {v1} -> v2`` to the environment.  The
search then treats coercions like any other unary function (with the low
Table 1 weight of 10), and the renderer erases them, so the user-visible
snippet is a term of the *supertype* obtained by subsumption.

:class:`SubtypeGraph` stores the declared edges and answers reflexive-
transitive queries; :func:`coercion_declarations` produces the coercion
declarations for an environment; :func:`erase_coercions` removes coercion
applications from a synthesized LNF term.  Transitivity needs no special
handling in the calculus — chains of direct-edge coercions compose during
the search, exactly as chains of unary methods would.
"""

from __future__ import annotations

from repro.core.environment import (Declaration, DeclKind, Environment,
                                    RenderSpec, RenderStyle)
from repro.core.terms import LNFTerm
from repro.core.types import Arrow, BaseType, Type, base

#: Prefix that identifies generated coercion declaration names.
COERCION_PREFIX = "$coerce$"


def coercion_name(subtype: str, supertype: str) -> str:
    """The deterministic name for the coercion ``subtype <: supertype``."""
    return f"{COERCION_PREFIX}{subtype}$to${supertype}"


def is_coercion_name(name: str) -> bool:
    """True when *name* was produced by :func:`coercion_name`."""
    return name.startswith(COERCION_PREFIX)


class SubtypeGraph:
    """Declared subtype edges over basic-type names.

    Only the *direct* edges are stored; ``is_subtype`` computes the
    reflexive-transitive closure lazily with memoisation.  Cycles are
    tolerated in queries (they simply mean mutual subtyping) but flagged by
    ``has_cycle`` so model builders can assert hierarchy sanity.
    """

    def __init__(self) -> None:
        self._supertypes: dict[str, set[str]] = {}
        self._closure: dict[str, frozenset[str]] = {}

    def add_edge(self, subtype: str, supertype: str) -> None:
        """Declare ``subtype <: supertype`` (a direct edge)."""
        if subtype == supertype:
            return
        self._supertypes.setdefault(subtype, set()).add(supertype)
        self._closure.clear()

    def add_chain(self, *names: str) -> None:
        """Declare ``names[0] <: names[1] <: ... <: names[-1]``."""
        for lower, upper in zip(names, names[1:]):
            self.add_edge(lower, upper)

    def direct_supertypes(self, name: str) -> frozenset[str]:
        return frozenset(self._supertypes.get(name, ()))

    def edges(self) -> list[tuple[str, str]]:
        """All direct edges, deterministically ordered."""
        return sorted((sub, sup)
                      for sub, sups in self._supertypes.items()
                      for sup in sups)

    def supertypes_of(self, name: str) -> frozenset[str]:
        """All strict-or-equal supertypes of *name* (reflexive closure)."""
        cached = self._closure.get(name)
        if cached is not None:
            return cached
        seen = {name}
        stack = [name]
        while stack:
            current = stack.pop()
            for supertype in self._supertypes.get(current, ()):
                if supertype not in seen:
                    seen.add(supertype)
                    stack.append(supertype)
        result = frozenset(seen)
        self._closure[name] = result
        return result

    def is_subtype(self, subtype: str, supertype: str) -> bool:
        """Reflexive-transitive subtype query on basic-type names."""
        return supertype in self.supertypes_of(subtype)

    def is_subtype_type(self, left: Type, right: Type) -> bool:
        """Structural subtyping on simple types.

        Uses the paper's three extra rules: reflexivity/transitivity on
        basic types and the contravariant/covariant rule on arrows
        (``t1 <: r1`` and ``r2 <: t2`` imply ``r1 -> r2 <: t1 -> t2``).
        """
        if isinstance(left, BaseType) and isinstance(right, BaseType):
            return self.is_subtype(left.name, right.name)
        if isinstance(left, Arrow) and isinstance(right, Arrow):
            return (self.is_subtype_type(right.argument, left.argument)
                    and self.is_subtype_type(left.result, right.result))
        return False

    def has_cycle(self) -> bool:
        """True when the declared edges contain a nontrivial cycle."""
        for name in self._supertypes:
            for supertype in self.supertypes_of(name):
                if supertype != name and name in self.supertypes_of(supertype):
                    return True
        return False

    def __len__(self) -> int:
        return sum(len(sups) for sups in self._supertypes.values())


def coercion_declarations(graph: SubtypeGraph) -> list[Declaration]:
    """One coercion declaration ``c12 : v1 -> v2`` per direct edge (§6)."""
    return [
        Declaration(
            name=coercion_name(sub, sup),
            type=Arrow(base(sub), base(sup)),
            kind=DeclKind.COERCION,
            render=RenderSpec(RenderStyle.COERCION, display=sup),
        )
        for sub, sup in graph.edges()
    ]


def environment_with_subtyping(environment: Environment,
                               graph: SubtypeGraph) -> Environment:
    """Extend *environment* with the coercions induced by *graph*."""
    coercions = coercion_declarations(graph)
    return environment.extended(coercions) if coercions else environment


def erase_coercions(term: LNFTerm) -> LNFTerm:
    """Remove coercion applications from a synthesized term (§6).

    A coercion node ``c12 e`` is replaced by the erasure of ``e``; binders on
    the coercion node are re-attached to the argument (coercions are unary,
    so this preserves the term's argument structure).
    """
    if is_coercion_name(term.head):
        assert len(term.arguments) == 1, "coercions are unary"
        inner = erase_coercions(term.arguments[0])
        if term.binders:
            inner = LNFTerm(term.binders + inner.binders, inner.head,
                            inner.arguments)
        return inner
    return LNFTerm(term.binders, term.head,
                   tuple(erase_coercions(argument) for argument in term.arguments))


def count_coercions(term: LNFTerm) -> int:
    """Number of coercion applications in *term* (the ``c`` of Table 2's
    ``c/nc`` size column counts these; ``nc`` counts the visible heads)."""
    own = 1 if is_coercion_name(term.head) else 0
    return own + sum(count_coercions(argument) for argument in term.arguments)
