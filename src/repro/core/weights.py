"""Weight functions (paper §4, Table 1).

A *lower* weight means a *more desirable* declaration — as in resolution
theorem proving.  Table 1 of the paper fixes the constants:

    Lambda     1
    Local      5
    Coercion   10
    Class      20
    Package    25
    Literal    200
    Imported   215 + 785 / (1 + f(x))

where ``f(x)`` is the number of occurrences of symbol ``x`` in the training
corpus.  A frequently used imported symbol therefore approaches weight 215,
an unseen one costs 1000.

The weight of a term ``\\x1...xm. f e1 ... en`` is the sum of the weights of
everything occurring in it (binders included).  The weight of a succinct
type in an environment — used to prioritise exploration requests (§5.6) — is
the minimum weight over ``Select``.

Three policy variants correspond to the three columns of Table 2:

* :meth:`WeightPolicy.standard` — the full system;
* :meth:`WeightPolicy.without_corpus` — Table 1 constants with every
  frequency treated as zero;
* :meth:`WeightPolicy.uniform` — the "No weights" ablation: every
  declaration costs the same, so ranking degenerates to term size and
  discovery order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.succinct import SuccinctType
from repro.core.terms import LNFTerm

#: Weight assigned to typed holes in partial expressions (Fig. 10).
HOLE_WEIGHT = 0.0


@dataclass(frozen=True)
class WeightPolicy:
    """Table 1 constants plus the imported-symbol frequency formula."""

    lambda_weight: float = 1.0
    local_weight: float = 5.0
    coercion_weight: float = 10.0
    class_weight: float = 20.0
    package_weight: float = 25.0
    literal_weight: float = 200.0
    imported_base: float = 215.0
    imported_bonus: float = 785.0
    use_frequency: bool = True
    uniform: bool = False

    # -- variants ------------------------------------------------------------

    @staticmethod
    def standard() -> "WeightPolicy":
        """The full policy: Table 1 with corpus frequencies."""
        return WeightPolicy()

    @staticmethod
    def without_corpus() -> "WeightPolicy":
        """Table 2's "No corpus" column: locality weights, f(x) = 0."""
        return WeightPolicy(use_frequency=False)

    @staticmethod
    def uniform_policy() -> "WeightPolicy":
        """Table 2's "No weights" column: every declaration costs 1."""
        return WeightPolicy(uniform=True)

    def with_constants(self, **overrides: float) -> "WeightPolicy":
        """A copy with some Table 1 constants replaced (for ablations)."""
        return replace(self, **overrides)

    # -- weights -------------------------------------------------------------

    def declaration_weight(self, decl: Declaration) -> float:
        """The initial weight of a declaration (Table 1)."""
        if self.uniform:
            return 1.0
        if decl.kind is DeclKind.LAMBDA:
            return self.lambda_weight
        if decl.kind is DeclKind.LOCAL:
            return self.local_weight
        if decl.kind is DeclKind.COERCION:
            return self.coercion_weight
        if decl.kind is DeclKind.CLASS_MEMBER:
            return self.class_weight
        if decl.kind is DeclKind.PACKAGE_MEMBER:
            return self.package_weight
        if decl.kind is DeclKind.LITERAL:
            return self.literal_weight
        assert decl.kind is DeclKind.IMPORTED
        frequency = decl.frequency if self.use_frequency else 0
        return self.imported_base + self.imported_bonus / (1 + frequency)

    def binder_weight(self) -> float:
        """Weight of one lambda binder introduced during reconstruction."""
        return 1.0 if self.uniform else self.lambda_weight

    def term_weight(self, term: LNFTerm, environment: Environment) -> float:
        """w(\\x1..xm. f e1..en) = sum w(xi) + w(f) + sum w(ei)  (§4).

        Heads that are not found in *environment* are treated as lambda
        binders (weight 1): during reconstruction every binder is a real
        LAMBDA declaration, but a finished snippet can be re-weighed against
        the original environment where binders are absent.
        """
        total = len(term.binders) * self.binder_weight()
        head = environment.lookup(term.head)
        total += self.declaration_weight(head) if head is not None else self.binder_weight()
        for argument in term.arguments:
            total += self.term_weight(argument, environment)
        return total

    def type_weight(self, stype: SuccinctType, environment: Environment) -> float:
        """w(t, Gamma_o) = min weight over Select(Gamma_o, t)  (§4).

        Infinite when no declaration has the requested succinct type; the
        exploration queue then treats such requests as least urgent.
        """
        weights = [self.declaration_weight(decl)
                   for decl in environment.select(stype)]
        return min(weights) if weights else math.inf
