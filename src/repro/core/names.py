"""Fresh-name supplies.

The reconstruction phase (Fig. 10 in the paper) introduces fresh lambda
binders ``x1, ..., xn`` and fresh hole names ``r1, ..., rm``.  A
:class:`NameSupply` hands out names that are guaranteed not to collide with a
protected set of existing names (the declarations visible at the program
point), while staying deterministic so that synthesis output is reproducible.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class NameSupply:
    """Deterministic supply of fresh identifiers.

    ``reserved`` names are copied into a private set the supply may grow;
    ``frozen`` is an *immutable* set shared by reference — never copied —
    so a scene-wide protected set (all ~10k declaration names of a big
    environment, see :meth:`Environment.reserved_names`) can back every
    per-query supply without being rebuilt per query.

    >>> supply = NameSupply(prefix="x", reserved=["x1"])
    >>> supply.fresh()
    'x0'
    >>> supply.fresh()
    'x2'
    """

    def __init__(self, prefix: str = "x", reserved: Iterable[str] = (),
                 frozen: frozenset = frozenset()):
        self._prefix = prefix
        self._reserved = set(reserved)
        self._frozen = frozen
        self._next = 0

    def reserve(self, names: Iterable[str]) -> None:
        """Add *names* to the collision-avoidance set."""
        self._reserved.update(names)

    def fresh(self) -> str:
        """Return the next unreserved name and mark it as used."""
        reserved = self._reserved
        frozen = self._frozen
        while True:
            candidate = f"{self._prefix}{self._next}"
            self._next += 1
            if candidate not in reserved and candidate not in frozen:
                reserved.add(candidate)
                return candidate

    def fresh_many(self, count: int) -> list[str]:
        """Return *count* distinct fresh names."""
        return [self.fresh() for _ in range(count)]

    def __iter__(self) -> Iterator[str]:
        while True:
            yield self.fresh()


class CountingSupply:
    """A supply of globally unique integer identifiers (for holes)."""

    def __init__(self) -> None:
        self._next = 0

    def next_id(self) -> int:
        value = self._next
        self._next += 1
        return value
