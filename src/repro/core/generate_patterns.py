"""Pattern generation (paper §5.4, Fig. 8/9).

Given the explored :class:`~repro.core.explore.SearchSpace`, this phase
computes which requests are *inhabited* — the least fixpoint of the
AND-OR structure: an edge fires when all its premise requests are
inhabited, a request is inhabited when at least one of its edges fires —
and turns every firing edge into a *succinct pattern* ``Gamma@S' : t``
(the PROD rule).  The TRANSFER rule of the paper moves premises that
became inhabited from the pending set ``S`` to the witnessed set ``Pi``;
our counter-based fixpoint is the standard implementation of exactly that
bookkeeping.

Two implementations live here:

* :func:`generate_patterns` — the counter-based least fixpoint (used in
  production);
* :func:`generate_patterns_incremental` — a faithful transcription of the
  paper's Fig. 9 worklist with explicit ``leaves`` / ``others`` sets and
  per-edge ``(S, Pi)`` state, also usable *online* while exploration is
  still producing edges (the §5.6 interleaved mode).

The test suite checks that the two produce identical pattern sets.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.explore import EnvKey, ReachabilityEdge, Request, SearchSpace
from repro.core.succinct import SuccinctType, sort_key


@dataclass(frozen=True)
class Pattern:
    """A succinct pattern ``Gamma@{t1,...,tn} : t`` (§3.3).

    ``premises`` is the argument set ``S'`` of the matched environment
    member; all of its types are inhabited in ``env``, and an inhabitant of
    ``result`` can be built from them by applying any declaration whose
    succinct type is ``premises -> result``.
    """

    env: EnvKey
    premises: frozenset  # frozenset[SuccinctType]
    result: str

    def sorted_premises(self) -> tuple[SuccinctType, ...]:
        return tuple(sorted(self.premises, key=sort_key))

    def __str__(self) -> str:
        inner = ", ".join(str(p) for p in self.sorted_premises())
        return f"Gamma@{{{inner}}} : {self.result}"


@dataclass
class PatternSet:
    """The generated patterns plus the inhabited-request relation."""

    patterns: frozenset = frozenset()          # frozenset[Pattern]
    inhabited: frozenset = frozenset()         # frozenset[Request]
    _index: dict = field(default_factory=dict)  # (EnvKey, result) -> tuple[Pattern]

    @staticmethod
    def build(patterns: Iterable[Pattern],
              inhabited: Iterable[Request]) -> "PatternSet":
        patterns = frozenset(patterns)
        index: dict[tuple[EnvKey, str], list[Pattern]] = {}
        for pattern in sorted(patterns,
                              key=lambda p: (p.result, len(p.premises),
                                             tuple(sort_key(x) for x in p.sorted_premises()))):
            index.setdefault((pattern.env, pattern.result), []).append(pattern)
        return PatternSet(
            patterns=patterns,
            inhabited=frozenset(inhabited),
            _index={key: tuple(values) for key, values in index.items()},
        )

    def lookup(self, env: EnvKey, result: str) -> tuple[Pattern, ...]:
        """All patterns ``env@S' : result`` — the Fig. 10 pattern query."""
        return self._index.get((env, result), ())

    def is_inhabited(self, request: Request) -> bool:
        return request in self.inhabited

    def __len__(self) -> int:
        return len(self.patterns)

    def __repr__(self) -> str:
        return (f"PatternSet({len(self.patterns)} patterns, "
                f"{len(self.inhabited)} inhabited requests)")


def generate_patterns(space: SearchSpace) -> PatternSet:
    """Counter-based least fixpoint over the explored AND-OR space."""
    # An edge waits on its *distinct* child requests.
    waiting: dict[ReachabilityEdge, int] = {}
    watchers: dict[Request, list[ReachabilityEdge]] = {}
    ready: deque[ReachabilityEdge] = deque()

    for edges in space.edges.values():
        for edge in edges:
            children = frozenset(edge.children())
            waiting[edge] = len(children)
            if not children:
                ready.append(edge)
            for child in children:
                watchers.setdefault(child, []).append(edge)

    inhabited: set[Request] = set()
    while ready:
        edge = ready.popleft()
        request = edge.request
        if request in inhabited:
            continue
        inhabited.add(request)
        for watcher in watchers.get(request, ()):
            waiting[watcher] -= 1
            if waiting[watcher] == 0:
                ready.append(watcher)

    # Every edge whose premises are all inhabited yields a pattern — not just
    # the edges that drove the fixpoint (several edges of one request fire).
    patterns = {
        Pattern(edge.request.env, edge.source.arguments, edge.request.target)
        for edges in space.edges.values()
        for edge in edges
        if all(child in inhabited for child in edge.children())
    }
    return PatternSet.build(patterns, inhabited)


class IncrementalPatternGenerator:
    """The paper's Fig. 9 algorithm, consumable online (§5.6).

    Mirrors the published pseudo-code: each reachability term carries a
    pending set ``S`` and a witnessed set ``Pi``; terms with empty ``S`` are
    *leaves*, processed from a queue; TRANSFER resolves a compatible pending
    term against a leaf; PROD emits the pattern of each processed leaf.

    ``add_edges`` may be called repeatedly as exploration discovers new
    reachability terms, which is exactly how the interleaved prover feeds
    it.  ``result`` finalises and returns the :class:`PatternSet`.
    """

    def __init__(self) -> None:
        # Edge state: edge -> (pending set of child requests, witnessed set).
        self._pending: dict[ReachabilityEdge, set[Request]] = {}
        self._leaves: deque[ReachabilityEdge] = deque()
        self._visited_leaves: set[ReachabilityEdge] = set()
        self._inhabited: set[Request] = set()
        self._watchers: dict[Request, list[ReachabilityEdge]] = {}
        self._patterns: set[Pattern] = set()

    def add_edges(self, edges: Iterable[ReachabilityEdge]) -> None:
        for edge in edges:
            pending = set(edge.children())
            # Premises already known inhabited transfer immediately.
            pending -= self._inhabited
            self._pending[edge] = pending
            if pending:
                for child in pending:
                    self._watchers.setdefault(child, []).append(edge)
            else:
                self._leaves.append(edge)
        self._drain()

    def _drain(self) -> None:
        while self._leaves:
            leaf = self._leaves.popleft()
            if leaf in self._visited_leaves:
                continue
            self._visited_leaves.add(leaf)
            # PROD: emit the pattern of this (now fully witnessed) term.
            self._patterns.add(Pattern(leaf.request.env,
                                       leaf.source.arguments,
                                       leaf.request.target))
            request = leaf.request
            if request in self._inhabited:
                continue
            self._inhabited.add(request)
            # TRANSFER: resolve compatible pending terms against this leaf.
            for watcher in self._watchers.get(request, ()):
                pending = self._pending.get(watcher)
                if pending is None or request not in pending:
                    continue
                pending.discard(request)
                if not pending:
                    self._leaves.append(watcher)

    def goal_reached(self, root: Request) -> bool:
        """True as soon as the root request is known inhabited."""
        return root in self._inhabited

    def result(self) -> PatternSet:
        return PatternSet.build(self._patterns, self._inhabited)


def generate_patterns_incremental(space: SearchSpace) -> PatternSet:
    """Run the Fig. 9 worklist over a fully explored space."""
    generator = IncrementalPatternGenerator()
    generator.add_edges(space.all_edges())
    return generator.result()


def generate_patterns_with_predecessor_map(space: SearchSpace) -> PatternSet:
    """The §5.7 optimisation: resolve watchers through the backward map.

    The paper builds, during exploration, a map from each reachability term
    to the terms whose propagation created it; the TRANSFER step's
    "compatible" set then becomes a map lookup instead of an expensive scan
    of ``others``.  Functionally identical to :func:`generate_patterns`
    (the tests assert set equality); the difference is purely how the
    watch-lists are obtained.
    """
    waiting: dict[ReachabilityEdge, int] = {}
    ready: deque[ReachabilityEdge] = deque()
    for edges in space.edges.values():
        for edge in edges:
            children = frozenset(edge.children())
            waiting[edge] = len(children)
            if not children:
                ready.append(edge)

    inhabited: set[Request] = set()
    while ready:
        edge = ready.popleft()
        request = edge.request
        if request in inhabited:
            continue
        inhabited.add(request)
        # §5.7: predecessors(request) is exactly the compatible set.  The
        # backward map is watcher-deduplicated at build time (explore),
        # matching the distinct-children countdown above — a twice-watched
        # request must decrement its edge once, not once per occurrence.
        for watcher in space.predecessors.get(request, ()):
            if watcher not in waiting:
                continue  # predecessor edge outside the (truncated) space
            waiting[watcher] -= 1
            if waiting[watcher] == 0:
                ready.append(watcher)

    patterns = {
        Pattern(edge.request.env, edge.source.arguments, edge.request.target)
        for edges in space.edges.values()
        for edge in edges
        if all(child in inhabited for child in edge.children())
    }
    return PatternSet.build(patterns, inhabited)


def goal_is_inhabited(space: SearchSpace,
                      patterns: Optional[PatternSet] = None) -> bool:
    """Decide the plain type-inhabitation question for the explored goal."""
    if patterns is None:
        patterns = generate_patterns(space)
    return patterns.is_inhabited(space.root)
