"""Pattern generation (paper §5.4, Fig. 8/9).

Given the explored :class:`~repro.core.explore.SearchSpace`, this phase
computes which requests are *inhabited* — the least fixpoint of the
AND-OR structure: an edge fires when all its premise requests are
inhabited, a request is inhabited when at least one of its edges fires —
and turns every firing edge into a *succinct pattern* ``Gamma@S' : t``
(the PROD rule).  The TRANSFER rule of the paper moves premises that
became inhabited from the pending set ``S`` to the witnessed set ``Pi``;
our counter-based fixpoint is the standard implementation of exactly that
bookkeeping.

The fixpoints run in two gears:

* **Indexed** — when the space carries an
  :class:`~repro.core.explore.IndexedSpace` (the production explorer),
  the counters, watch-lists and inhabited set are arrays and dicts over
  dense integer node/edge ids; no `Request`/`ReachabilityEdge` view is
  hashed anywhere in the fixpoint.  :class:`IndexedPatternGenerator` is
  the online (§5.6 interleaved) form, fed edge-id spans straight from the
  explorer.
* **Reference** — the original structural implementations, used for
  hand-built or reference-explored spaces and kept as the executable
  specification (``*_reference``); the property suite asserts both gears
  produce identical pattern sets, truncated runs included.

Public entry points (`generate_patterns`,
`generate_patterns_incremental`, `generate_patterns_with_predecessor_map`)
pick the gear automatically, so every existing caller sees identical
results either way.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.explore import (EnvKey, IndexedSpace, ReachabilityEdge,
                                Request, SearchSpace)
from repro.core.succinct import SuccinctType, sort_key


@dataclass(frozen=True)
class Pattern:
    """A succinct pattern ``Gamma@{t1,...,tn} : t`` (§3.3).

    ``premises`` is the argument set ``S'`` of the matched environment
    member; all of its types are inhabited in ``env``, and an inhabitant of
    ``result`` can be built from them by applying any declaration whose
    succinct type is ``premises -> result``.
    """

    env: EnvKey
    premises: frozenset  # frozenset[SuccinctType]
    result: str

    def sorted_premises(self) -> tuple[SuccinctType, ...]:
        # Routed through the succinct-type view so the canonical order is
        # served from the global sorted-arguments memo (premise sets are
        # shared with the matched members, so it is almost always warm).
        return self.succinct_type().sorted_arguments()

    def succinct_type(self) -> SuccinctType:
        """The member type ``premises -> result`` this pattern matched.

        Cached per pattern: reconstruction probes ``Select`` with this
        type once per candidate-list build, and handing back the same
        instance makes those dict lookups identity-fast.
        """
        stype = self.__dict__.get("_stype")
        if stype is None:
            stype = SuccinctType(self.premises, self.result)
            object.__setattr__(self, "_stype", stype)
        return stype

    def __str__(self) -> str:
        inner = ", ".join(str(p) for p in self.sorted_premises())
        return f"Gamma@{{{inner}}} : {self.result}"


@dataclass
class PatternSet:
    """The generated patterns plus the inhabited-request relation."""

    patterns: frozenset = frozenset()          # frozenset[Pattern]
    inhabited: frozenset = frozenset()         # frozenset[Request]
    _index: dict = field(default_factory=dict)  # (EnvKey, result) -> tuple[Pattern]

    @staticmethod
    def build(patterns: Iterable[Pattern],
              inhabited: Iterable[Request]) -> "PatternSet":
        patterns = frozenset(patterns)
        index: dict[tuple[EnvKey, str], list[Pattern]] = {}
        # The historical index order sorted on ``(result, len(premises),
        # sorted premise keys)`` — which is, component for component,
        # exactly ``sort_key`` of the pattern's member type, served from
        # the global (cross-query) memo.
        for pattern in sorted(patterns,
                              key=lambda p: sort_key(p.succinct_type())):
            index.setdefault((pattern.env, pattern.result), []).append(pattern)
        return PatternSet(
            patterns=patterns,
            inhabited=frozenset(inhabited),
            _index={key: tuple(values) for key, values in index.items()},
        )

    def lookup(self, env: EnvKey, result: str) -> tuple[Pattern, ...]:
        """All patterns ``env@S' : result`` — the Fig. 10 pattern query."""
        return self._index.get((env, result), ())

    def is_inhabited(self, request: Request) -> bool:
        return request in self.inhabited

    def __len__(self) -> int:
        return len(self.patterns)

    def __repr__(self) -> str:
        return (f"PatternSet({len(self.patterns)} patterns, "
                f"{len(self.inhabited)} inhabited requests)")


# ---------------------------------------------------------------------------
# Indexed gear: fixpoints over dense integer ids
# ---------------------------------------------------------------------------


def _indexed_pattern_set(isp: IndexedSpace, pattern_edges: Iterable[int],
                         inhabited_nodes: Iterable[int]) -> PatternSet:
    """Materialise the classic :class:`PatternSet` from integer results."""
    # Dedup on (env id, interned source) before building Pattern objects:
    # several edges of one request share a source type, and int/identity
    # keys are far cheaper to hash than pattern triples.
    edge_node = isp.edge_node
    edge_source = isp.edge_source
    node_envs = isp.node_envs
    node_targets = isp.node_targets
    distinct = set()
    for edge in pattern_edges:
        node = edge_node[edge]
        distinct.add((node_envs[node], edge_source[edge], node_targets[node]))
    arena_members = isp.arena.members
    patterns = set()
    for env_id, source, target in distinct:
        pattern = Pattern(arena_members(env_id), source.arguments, target)
        # The matched member *is* the pattern's succinct type
        # (``arguments -> result`` with ``result == target``); seeding the
        # view with the interned instance makes downstream ``sort_key``
        # and ``Select`` lookups identity-fast, and warm across queries.
        object.__setattr__(pattern, "_stype", source)
        patterns.add(pattern)
    inhabited = {isp.request_view(node) for node in inhabited_nodes}
    return PatternSet.build(patterns, inhabited)


def _firing_edges(isp: IndexedSpace, inhabited: set) -> list[int]:
    """Every edge whose premises are all inhabited (the PROD candidates)."""
    children = isp.edge_children
    return [edge for edge in range(len(children))
            if all(child in inhabited for child in children[edge])]


def _generate_patterns_indexed(isp: IndexedSpace) -> PatternSet:
    """Counter-based least fixpoint over integer edge/node ids."""
    edge_count = len(isp.edge_node)
    waiting = [0] * edge_count
    watchers: dict[int, list[int]] = {}
    ready: deque[int] = deque()

    for edge in range(edge_count):
        children = set(isp.edge_children[edge])
        waiting[edge] = len(children)
        if not children:
            ready.append(edge)
        for child in children:
            watchers.setdefault(child, []).append(edge)

    inhabited: set[int] = set()
    edge_node = isp.edge_node
    while ready:
        edge = ready.popleft()
        node = edge_node[edge]
        if node in inhabited:
            continue
        inhabited.add(node)
        for watcher in watchers.get(node, ()):
            waiting[watcher] -= 1
            if waiting[watcher] == 0:
                ready.append(watcher)

    return _indexed_pattern_set(isp, _firing_edges(isp, inhabited), inhabited)


def _generate_patterns_predecessors_indexed(isp: IndexedSpace) -> PatternSet:
    """The §5.7 backward-map fixpoint over integer ids."""
    edge_count = len(isp.edge_node)
    waiting = [0] * edge_count
    ready: deque[int] = deque()
    for edge in range(edge_count):
        children = set(isp.edge_children[edge])
        waiting[edge] = len(children)
        if not children:
            ready.append(edge)

    inhabited: set[int] = set()
    edge_node = isp.edge_node
    predecessors = isp.predecessors
    while ready:
        edge = ready.popleft()
        node = edge_node[edge]
        if node in inhabited:
            continue
        inhabited.add(node)
        # §5.7: predecessors(node) is exactly the compatible set, watcher-
        # deduplicated at build time (explore) to match the distinct-
        # children countdown above.
        for watcher in predecessors.get(node, ()):
            waiting[watcher] -= 1
            if waiting[watcher] == 0:
                ready.append(watcher)

    return _indexed_pattern_set(isp, _firing_edges(isp, inhabited), inhabited)


class IndexedPatternGenerator:
    """The paper's Fig. 9 algorithm over integer ids, consumable online.

    The §5.6 interleaved prover wires :meth:`add_span` into the explorer's
    ``on_edges_indexed`` hook: every batch of freshly discovered edges is
    folded into the fixpoint immediately, so a time-limited prover still
    yields patterns for everything it has explored.  State is exactly the
    published pseudo-code's — a pending set ``S`` per reachability term,
    leaves processed from a queue, TRANSFER resolving pending terms
    against each new leaf, PROD emitting the leaf's pattern — just keyed
    by edge/node ids instead of structural objects.
    """

    def __init__(self) -> None:
        self._space: Optional[IndexedSpace] = None
        self._pending: dict[int, set[int]] = {}    # edge -> pending children
        self._leaves: deque[int] = deque()
        self._visited_leaves: set[int] = set()
        self._inhabited: set[int] = set()          # node ids
        self._watchers: dict[int, list[int]] = {}  # node -> waiting edges
        self._pattern_edges: set[int] = set()

    def add_span(self, isp: IndexedSpace, start: int, end: int) -> None:
        """Fold the edge-id range ``[start, end)`` into the fixpoint."""
        self._space = isp
        edge_children = isp.edge_children
        for edge in range(start, end):
            # Premises already known inhabited transfer immediately.
            pending = set(edge_children[edge]) - self._inhabited
            self._pending[edge] = pending
            if pending:
                for child in pending:
                    self._watchers.setdefault(child, []).append(edge)
            else:
                self._leaves.append(edge)
        self._drain(isp)

    def _drain(self, isp: IndexedSpace) -> None:
        edge_node = isp.edge_node
        while self._leaves:
            leaf = self._leaves.popleft()
            if leaf in self._visited_leaves:
                continue
            self._visited_leaves.add(leaf)
            # PROD: emit the pattern of this (now fully witnessed) term.
            self._pattern_edges.add(leaf)
            node = edge_node[leaf]
            if node in self._inhabited:
                continue
            self._inhabited.add(node)
            # TRANSFER: resolve compatible pending terms against this leaf.
            for watcher in self._watchers.get(node, ()):
                pending = self._pending.get(watcher)
                if pending is None or node not in pending:
                    continue
                pending.discard(node)
                if not pending:
                    self._leaves.append(watcher)

    def goal_reached(self, root: int) -> bool:
        """True as soon as the root node is known inhabited."""
        return root in self._inhabited

    def result(self) -> PatternSet:
        if self._space is None:                    # no edges ever arrived
            return PatternSet.build((), ())
        return _indexed_pattern_set(self._space, self._pattern_edges,
                                    self._inhabited)


# ---------------------------------------------------------------------------
# Reference gear: the original structural implementations
# ---------------------------------------------------------------------------


def generate_patterns_reference(space: SearchSpace) -> PatternSet:
    """Counter-based least fixpoint over the explored AND-OR space."""
    # An edge waits on its *distinct* child requests.
    waiting: dict[ReachabilityEdge, int] = {}
    watchers: dict[Request, list[ReachabilityEdge]] = {}
    ready: deque[ReachabilityEdge] = deque()

    for edges in space.edges.values():
        for edge in edges:
            children = frozenset(edge.children())
            waiting[edge] = len(children)
            if not children:
                ready.append(edge)
            for child in children:
                watchers.setdefault(child, []).append(edge)

    inhabited: set[Request] = set()
    while ready:
        edge = ready.popleft()
        request = edge.request
        if request in inhabited:
            continue
        inhabited.add(request)
        for watcher in watchers.get(request, ()):
            waiting[watcher] -= 1
            if waiting[watcher] == 0:
                ready.append(watcher)

    # Every edge whose premises are all inhabited yields a pattern — not just
    # the edges that drove the fixpoint (several edges of one request fire).
    patterns = {
        Pattern(edge.request.env, edge.source.arguments, edge.request.target)
        for edges in space.edges.values()
        for edge in edges
        if all(child in inhabited for child in edge.children())
    }
    return PatternSet.build(patterns, inhabited)


def generate_patterns(space: SearchSpace) -> PatternSet:
    """Counter-based least fixpoint; indexed when the space is arena-backed."""
    if space.indexed is not None:
        return _generate_patterns_indexed(space.indexed)
    return generate_patterns_reference(space)


class IncrementalPatternGenerator:
    """The paper's Fig. 9 algorithm over structural edges (§5.6).

    Mirrors the published pseudo-code: each reachability term carries a
    pending set ``S`` and a witnessed set ``Pi``; terms with empty ``S`` are
    *leaves*, processed from a queue; TRANSFER resolves a compatible pending
    term against a leaf; PROD emits the pattern of each processed leaf.

    ``add_edges`` may be called repeatedly as exploration discovers new
    reachability terms.  This is the reference form;
    :class:`IndexedPatternGenerator` is the production (integer-id)
    equivalent the interleaved prover uses.
    """

    def __init__(self) -> None:
        # Edge state: edge -> (pending set of child requests, witnessed set).
        self._pending: dict[ReachabilityEdge, set[Request]] = {}
        self._leaves: deque[ReachabilityEdge] = deque()
        self._visited_leaves: set[ReachabilityEdge] = set()
        self._inhabited: set[Request] = set()
        self._watchers: dict[Request, list[ReachabilityEdge]] = {}
        self._patterns: set[Pattern] = set()

    def add_edges(self, edges: Iterable[ReachabilityEdge]) -> None:
        for edge in edges:
            pending = set(edge.children())
            # Premises already known inhabited transfer immediately.
            pending -= self._inhabited
            self._pending[edge] = pending
            if pending:
                for child in pending:
                    self._watchers.setdefault(child, []).append(edge)
            else:
                self._leaves.append(edge)
        self._drain()

    def _drain(self) -> None:
        while self._leaves:
            leaf = self._leaves.popleft()
            if leaf in self._visited_leaves:
                continue
            self._visited_leaves.add(leaf)
            # PROD: emit the pattern of this (now fully witnessed) term.
            self._patterns.add(Pattern(leaf.request.env,
                                       leaf.source.arguments,
                                       leaf.request.target))
            request = leaf.request
            if request in self._inhabited:
                continue
            self._inhabited.add(request)
            # TRANSFER: resolve compatible pending terms against this leaf.
            for watcher in self._watchers.get(request, ()):
                pending = self._pending.get(watcher)
                if pending is None or request not in pending:
                    continue
                pending.discard(request)
                if not pending:
                    self._leaves.append(watcher)

    def goal_reached(self, root: Request) -> bool:
        """True as soon as the root request is known inhabited."""
        return root in self._inhabited

    def result(self) -> PatternSet:
        return PatternSet.build(self._patterns, self._inhabited)


def generate_patterns_incremental(space: SearchSpace) -> PatternSet:
    """Run the Fig. 9 worklist over a fully explored space."""
    if space.indexed is not None:
        isp = space.indexed
        generator = IndexedPatternGenerator()
        if isp.edge_count():
            generator.add_span(isp, 0, isp.edge_count())
        generator._space = isp
        return generator.result()
    generator = IncrementalPatternGenerator()
    generator.add_edges(space.all_edges())
    return generator.result()


def generate_patterns_with_predecessor_map(space: SearchSpace) -> PatternSet:
    """The §5.7 optimisation: resolve watchers through the backward map.

    The paper builds, during exploration, a map from each reachability term
    to the terms whose propagation created it; the TRANSFER step's
    "compatible" set then becomes a map lookup instead of an expensive scan
    of ``others``.  Functionally identical to :func:`generate_patterns`
    (the tests assert set equality); the difference is purely how the
    watch-lists are obtained.
    """
    if space.indexed is not None:
        return _generate_patterns_predecessors_indexed(space.indexed)

    waiting: dict[ReachabilityEdge, int] = {}
    ready: deque[ReachabilityEdge] = deque()
    for edges in space.edges.values():
        for edge in edges:
            children = frozenset(edge.children())
            waiting[edge] = len(children)
            if not children:
                ready.append(edge)

    inhabited: set[Request] = set()
    while ready:
        edge = ready.popleft()
        request = edge.request
        if request in inhabited:
            continue
        inhabited.add(request)
        # §5.7: predecessors(request) is exactly the compatible set.  The
        # backward map is watcher-deduplicated at build time (explore),
        # matching the distinct-children countdown above — a twice-watched
        # request must decrement its edge once, not once per occurrence.
        for watcher in space.predecessors.get(request, ()):
            if watcher not in waiting:
                continue  # predecessor edge outside the (truncated) space
            waiting[watcher] -= 1
            if waiting[watcher] == 0:
                ready.append(watcher)

    patterns = {
        Pattern(edge.request.env, edge.source.arguments, edge.request.target)
        for edges in space.edges.values()
        for edge in edges
        if all(child in inhabited for child in edge.children())
    }
    return PatternSet.build(patterns, inhabited)


def goal_is_inhabited(space: SearchSpace,
                      patterns: Optional[PatternSet] = None) -> bool:
    """Decide the plain type-inhabitation question for the explored goal."""
    if patterns is None:
        patterns = generate_patterns(space)
    return patterns.is_inhabited(space.root)
