"""Composable post-reconstruction re-ranking (the weigher chain).

The paper's base weights (Table 1 natures + corpus frequency, §4) drive
proof search exactly as before — nothing in this module touches the
prover or reconstruction.  What it adds is the layer the IntelliJ-Scala
completion engine calls *weighers* (``ScalaByTypeWeigher``,
``ScalaKindCompletionWeigher``): an ordered chain of small, composable
scorers that adjust the weight of each **reconstructed snippet** using
position context — local vs. member, current-class vs. foreign,
after-``new``, kind buckets, per-project API frequency — and then
re-sort.  Lower weight still wins, exactly as in the base model.

Design constraints (load-bearing for the serving stack):

* **Parity by default.** ``RankingPipeline.empty()`` returns the input
  result *object* unchanged, so an empty chain is byte-identical to the
  pre-refactor weight path (property-tested in
  ``tests/properties/test_ranking_parity.py``).
* **Post-cache.** The engine result cache is fingerprint-keyed and must
  stay context-free; reranking runs *after* cache lookup so one cached
  synthesis serves every context.  Nothing in this module may feed a
  cache key.
* **Stable.** Ties sort by original rank, so a weigher that adjusts
  nothing reorders nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Iterable, Iterator, Mapping, Optional, Sequence, TYPE_CHECKING

from repro.core.environment import DeclKind, Declaration, Environment, RenderStyle
from repro.core.terms import LNFTerm

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.synthesizer import Snippet, SynthesisResult


class ContextError(ValueError):
    """Raised for a malformed context payload (unknown key, bad type)."""


#: Recognised values for ``CompletionContext.position_kind``.  "expression"
#: is the neutral default; "after_new" activates the constructor boost.
POSITION_KINDS = ("expression", "after_new", "member_access", "statement")


@dataclass(frozen=True)
class CompletionContext:
    """Per-query position hints riding the protocol (all optional).

    ``receiver_type`` / ``enclosing_class`` are type names, either fully
    qualified (``java.io.File``) or simple (``File``).  ``position_kind``
    is one of :data:`POSITION_KINDS`.
    """

    receiver_type: Optional[str] = None
    enclosing_class: Optional[str] = None
    position_kind: Optional[str] = None

    @property
    def is_empty(self) -> bool:
        return (self.receiver_type is None and self.enclosing_class is None
                and self.position_kind is None)

    @classmethod
    def from_payload(cls, payload: object) -> "CompletionContext":
        """Parse a wire-level ``context`` object, rejecting typos loudly.

        An unknown key is a client bug (a typo'd hint would otherwise be
        silently ignored and the caller would never learn why ranking
        did not change), so it raises :class:`ContextError`.
        """
        if not isinstance(payload, dict):
            raise ContextError("context must be an object")
        unknown = sorted(set(payload) - set(CONTEXT_FIELDS))
        if unknown:
            raise ContextError(
                "unknown context key(s): %s (accepted: %s)"
                % (", ".join(unknown), ", ".join(CONTEXT_FIELDS)))
        values = {}
        for name in CONTEXT_FIELDS:
            value = payload.get(name)
            if value is None:
                continue
            if not isinstance(value, str) or not value:
                raise ContextError(
                    "context.%s must be a non-empty string" % name)
            values[name] = value
        kind = values.get("position_kind")
        if kind is not None and kind not in POSITION_KINDS:
            raise ContextError(
                "context.position_kind must be one of %s"
                % ", ".join(POSITION_KINDS))
        return cls(**values)

    def to_payload(self) -> dict:
        """The wire form: only the hints that are actually set."""
        return {name: value for name in CONTEXT_FIELDS
                if (value := getattr(self, name)) is not None}


#: The accepted wire keys for a ``context`` object — by construction in
#: sync with the dataclass fields (regression-tested against
#: ``protocol.py``'s request serializer).
CONTEXT_FIELDS = tuple(f.name for f in fields(CompletionContext))

EMPTY_CONTEXT = CompletionContext()


# ---------------------------------------------------------------------------
# Term inspection helpers
# ---------------------------------------------------------------------------

def term_heads(term: LNFTerm) -> Iterator[str]:
    """Every head name occurring in *term*, outermost first."""
    yield term.head
    for argument in term.arguments:
        yield from term_heads(argument)


def used_declarations(term: LNFTerm,
                      environment: Environment) -> list[Declaration]:
    """The distinct environment declarations referenced anywhere in *term*.

    Binder-bound heads (lambda parameters) do not resolve in the
    environment and are skipped; each declaration is reported once.
    """
    seen: set[str] = set()
    found: list[Declaration] = []
    for name in term_heads(term):
        if name in seen:
            continue
        seen.add(name)
        decl = environment.lookup(name)
        if decl is not None:
            found.append(decl)
    return found


def declaration_owner(decl: Declaration) -> str:
    """The dotted owner prefix of a declaration name.

    ``java.io.PrintStream.println`` -> ``java.io.PrintStream``; a name
    with no dots has no owner (returns ``""``).
    """
    name, _, _ = decl.name.rpartition(".")
    return name


def _simple_name(qualified: str) -> str:
    return qualified.rpartition(".")[2]


def type_name_matches(owner: str, hint: str) -> bool:
    """Whether an owner type matches a (possibly unqualified) hint."""
    if not owner or not hint:
        return False
    return owner == hint or _simple_name(owner) == _simple_name(hint)


# ---------------------------------------------------------------------------
# Weighers
# ---------------------------------------------------------------------------

class Weigher:
    """One stage of the chain: an additive weight delta per snippet.

    Negative deltas *promote* (lower weight wins).  Implementations must
    be pure functions of their arguments — the pipeline may be applied
    to cached results from any thread.
    """

    name = "weigher"

    def adjust(self, snippet: "Snippet", environment: Environment,
               context: CompletionContext,
               frequencies: Optional[Mapping[str, int]] = None) -> float:
        raise NotImplementedError


class KindWeigher(Weigher):
    """Mild kind-bucket preference on the snippet's head declaration.

    Mirrors ``ScalaKindCompletionWeigher``'s buckets: things defined
    nearby (locals, lambda binders) over members, members over imports,
    literals last.  Deltas are small relative to Table 1 gaps so the
    base model keeps deciding between distant alternatives.
    """

    name = "kind"

    ADJUSTMENTS = {
        DeclKind.LOCAL: -3.0,
        DeclKind.LAMBDA: -3.0,
        DeclKind.CLASS_MEMBER: -1.0,
        DeclKind.PACKAGE_MEMBER: -0.5,
        DeclKind.LITERAL: 4.0,
    }

    def adjust(self, snippet, environment, context, frequencies=None):
        decl = environment.lookup(snippet.term.head)
        if decl is None:
            return 0.0
        return self.ADJUSTMENTS.get(decl.kind, 0.0)


class ScopeDistanceWeigher(Weigher):
    """Promote snippets that *use* in-scope locals (``ScalaByTypeWeigher``).

    The base model already prices a local occurrence at 5 (Table 1), but
    that is a per-occurrence *cost*: ``new JButton()`` outweighs
    ``new JButton(text)`` by exactly the price of mentioning ``text``.
    In an editor the opposite preference usually holds — completions
    that wire up the values you just defined are the ones you meant.
    This weigher grants a bonus per **distinct** local referenced
    (capped), which also breaks argument-permutation ties in favour of
    using more of the scope (``new Point(x, y)`` over ``new Point(x, x)``).
    """

    name = "scope"

    BONUS_PER_LOCAL = -8.0
    MAX_LOCALS = 3

    def adjust(self, snippet, environment, context, frequencies=None):
        distinct = sum(1 for decl in used_declarations(snippet.term,
                                                       environment)
                       if decl.kind is DeclKind.LOCAL)
        return self.BONUS_PER_LOCAL * min(distinct, self.MAX_LOCALS)


class ReceiverAffinityWeigher(Weigher):
    """Context-gated: promote heads owned by the hinted receiver type.

    Only active when the query carries ``receiver_type`` or
    ``enclosing_class`` hints; the owner is the dotted prefix of the
    declaration name (``java.io.File.exists`` is owned by
    ``java.io.File``), matched fully-qualified or by simple name.
    """

    name = "receiver"

    RECEIVER_BONUS = -6.0
    ENCLOSING_BONUS = -4.0

    def adjust(self, snippet, environment, context, frequencies=None):
        if context.receiver_type is None and context.enclosing_class is None:
            return 0.0
        decl = environment.lookup(snippet.term.head)
        if decl is None:
            return 0.0
        owner = declaration_owner(decl)
        delta = 0.0
        if context.receiver_type is not None and \
                type_name_matches(owner, context.receiver_type):
            delta += self.RECEIVER_BONUS
        if context.enclosing_class is not None and \
                type_name_matches(owner, context.enclosing_class):
            delta += self.ENCLOSING_BONUS
        return delta


class ConstructorBoostWeigher(Weigher):
    """Context-gated: after ``new``, constructors are what was asked for."""

    name = "constructor"

    BONUS = -10.0

    def adjust(self, snippet, environment, context, frequencies=None):
        if context.position_kind != "after_new":
            return 0.0
        decl = environment.lookup(snippet.term.head)
        if decl is None or decl.render is None:
            return 0.0
        if decl.render.style is RenderStyle.CONSTRUCTOR:
            return self.BONUS
        return 0.0


class ProjectFrequencyWeigher(Weigher):
    """Promote heads this *project* actually calls (per-project tables).

    The global corpus frequency is already priced into the base weights
    at search time; this stage layers the per-project table selected for
    the scene (mined by ``repro.corpus.mining.mine_project_tables``) on
    top, saturating so a wildly popular symbol cannot drown the rest of
    the chain.  With no table selected the stage is a no-op, which *is*
    the global fallback: base weights already encode the global table.
    """

    name = "project_freq"

    SCALE = -6.0
    HALF_SATURATION = 8.0

    def adjust(self, snippet, environment, context, frequencies=None):
        if not frequencies:
            return 0.0
        count = frequencies.get(snippet.term.head, 0)
        if count <= 0:
            return 0.0
        return self.SCALE * count / (count + self.HALF_SATURATION)


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RerankOutcome:
    """What :meth:`RankingPipeline.rerank` did to one result.

    ``result`` is the (possibly) re-ranked result — the *same object* as
    the input whenever nothing applied, preserving byte parity and the
    engine's cache-identity guarantees.  ``adjustments`` counts, per
    weigher name, how many snippets that weigher moved (non-zero delta);
    ``applied`` is True when any weigher adjusted anything.
    """

    result: "SynthesisResult"
    adjustments: Mapping[str, int]
    applied: bool
    reordered: bool


class RankingPipeline:
    """An ordered, immutable chain of weighers applied after cache lookup."""

    def __init__(self, weighers: Iterable[Weigher] = ()):
        self.weighers: tuple[Weigher, ...] = tuple(weighers)

    @classmethod
    def empty(cls) -> "RankingPipeline":
        """The parity pipeline: rerank returns its input unchanged."""
        return cls()

    @classmethod
    def standard(cls) -> "RankingPipeline":
        """The default serving chain, in evaluation order."""
        return cls((KindWeigher(), ScopeDistanceWeigher(),
                    ReceiverAffinityWeigher(), ConstructorBoostWeigher(),
                    ProjectFrequencyWeigher()))

    def __len__(self) -> int:
        return len(self.weighers)

    def __bool__(self) -> bool:
        return bool(self.weighers)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(weigher.name for weigher in self.weighers)

    def rerank(self, result: "SynthesisResult", environment: Environment,
               context: Optional[CompletionContext] = None,
               frequencies: Optional[Mapping[str, int]] = None,
               ) -> RerankOutcome:
        """Re-score and stably re-sort a reconstruction result.

        Returns the input object untouched when the chain is empty or no
        weigher adjusts anything; otherwise a new ``SynthesisResult``
        whose snippets carry adjusted weights and renumbered ranks.
        """
        context = context if context is not None else EMPTY_CONTEXT
        snippets = result.snippets
        if not self.weighers or not snippets:
            return RerankOutcome(result, {}, False, False)

        moved = {weigher.name: 0 for weigher in self.weighers}
        deltas = [0.0] * len(snippets)
        for weigher in self.weighers:
            for index, snippet in enumerate(snippets):
                delta = weigher.adjust(snippet, environment, context,
                                       frequencies)
                if delta:
                    moved[weigher.name] += 1
                    deltas[index] += delta
        if not any(deltas):
            return RerankOutcome(result, moved, False, False)

        order = sorted(range(len(snippets)),
                       key=lambda i: (snippets[i].weight + deltas[i], i))
        reranked = tuple(
            replace(snippets[i], weight=snippets[i].weight + deltas[i],
                    rank=position + 1)
            for position, i in enumerate(order))
        return RerankOutcome(replace(result, snippets=reranked), moved,
                             True, order != sorted(order))


def pipeline_from_names(names: Sequence[str]) -> RankingPipeline:
    """Build a pipeline from weigher names (CLI / config surface)."""
    registry = {weigher.name: weigher
                for weigher in RankingPipeline.standard().weighers}
    missing = [name for name in names if name not in registry]
    if missing:
        raise ValueError(
            "unknown weigher(s): %s (available: %s)"
            % (", ".join(missing), ", ".join(sorted(registry))))
    return RankingPipeline(registry[name] for name in names)
