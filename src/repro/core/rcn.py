"""The CL / Select / RCN reference functions (paper Fig. 4, §3.5).

These are *specifications*, not the production algorithm: ``RCN`` rebuilds
every long-normal-form inhabitant of a type up to a given depth ``d`` by
brute-force recursion over the succinct calculus.  Theorem 3.3 states

    Gamma_o |-lambda e : tau   <=>   e in RCN(Gamma_o, tau, D(e))

and the property-based test-suite checks the production synthesizer against
this oracle on small random environments.  Complexity is exponential — use
only on small instances.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.explore import EnvKey, explore, strip
from repro.core.generate_patterns import generate_patterns
from repro.core.names import NameSupply
from repro.core.succinct import SuccinctType, sigma, sort_key
from repro.core.terms import Binder, LNFTerm, canonicalize_lnf
from repro.core.types import Type, uncurry


class SuccinctDecider:
    """Memoised decision procedure for ``Gamma |-c t`` on succinct types."""

    def __init__(self) -> None:
        self._cache: dict[tuple[EnvKey, SuccinctType], bool] = {}

    def inhabited(self, env: EnvKey, stype: SuccinctType) -> bool:
        """Is the succinct type *stype* inhabited in environment *env*?"""
        key = (env, stype)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        space = explore(env, stype)
        patterns = generate_patterns(space)
        decision = patterns.is_inhabited(space.root)
        self._cache[key] = decision
        return decision


def cl(env: EnvKey, goal: SuccinctType,
       decider: SuccinctDecider | None = None,
       ) -> list[tuple[EnvKey, frozenset, str]]:
    """The CL function of Fig. 4.

    ``CL(Gamma, S->t)`` returns all patterns ``(Gamma+S)@S1 : t`` such that
    ``S1 -> t`` is a member of ``Gamma+S`` and every type in ``S1`` is
    inhabited in ``Gamma+S``.  Results are triples
    ``(extended env, S1, t)`` in deterministic order.
    """
    decider = decider or SuccinctDecider()
    extended = frozenset(env) | goal.arguments
    target = goal.result
    found = []
    for member in sorted(extended, key=sort_key):
        if member.result != target:
            continue
        if all(decider.inhabited(extended, premise)
               for premise in member.arguments):
            found.append((extended, member.arguments, target))
    return found


def rcn(environment: Environment, goal: Type, depth: int,
        _decider: SuccinctDecider | None = None,
        _names: NameSupply | None = None) -> set[LNFTerm]:
    """The RCN function of Fig. 4: all LNF inhabitants up to depth *depth*.

    Returned terms are canonicalised (binders renamed in preorder), so the
    result is a genuine set modulo alpha-equivalence.
    """
    decider = _decider or SuccinctDecider()
    names = _names or NameSupply(
        prefix="x", reserved=[decl.name for decl in environment.declarations()])

    terms = _rcn(environment, goal, depth, decider, names)
    return {canonicalize_lnf(term) for term in terms}


def _rcn(environment: Environment, goal: Type, depth: int,
         decider: SuccinctDecider, names: NameSupply) -> set[LNFTerm]:
    if depth <= 0:
        return set()
    argument_types, _result = uncurry(goal)
    succinct_goal = sigma(goal)
    env_key = environment.succinct_environment()

    binders = tuple(Binder(names.fresh(), tpe) for tpe in argument_types)
    binder_decls = [Declaration(b.name, b.type, DeclKind.LAMBDA)
                    for b in binders]
    extended = environment.extended(binder_decls) if binder_decls else environment

    terms: set[LNFTerm] = set()
    for _env, premises, result in cl(env_key, succinct_goal, decider):
        wanted = SuccinctType(premises, result)
        for decl in extended.select(wanted):
            parameter_types, _ = uncurry(decl.type)
            if not parameter_types:
                terms.add(LNFTerm(binders, decl.name, ()))
                continue
            candidate_lists = [
                sorted(_rcn(extended, parameter, depth - 1, decider, names),
                       key=str)
                for parameter in parameter_types
            ]
            if any(not candidates for candidates in candidate_lists):
                continue
            for combination in itertools.product(*candidate_lists):
                terms.add(LNFTerm(binders, decl.name, tuple(combination)))
    return terms


def inhabitants_up_to_depth(environment: Environment, goal: Type,
                            depth: int) -> set[LNFTerm]:
    """Alias of :func:`rcn` with a name matching the theorem statement."""
    return rcn(environment, goal, depth)
