"""Lambda terms and long normal forms (paper §3.1).

Two term representations live here:

* **Generic terms** — :class:`Variable` / :class:`Abstraction` /
  :class:`Application` — the ordinary simply typed lambda calculus.  They
  support substitution, beta normalisation and eta-long expansion, which the
  test suite uses to validate Theorem 3.3 (every simply typed term converts
  to long normal form, and synthesis finds exactly the long-normal-form
  inhabitants).

* **LNF terms** — :class:`LNFTerm` — the canonical shape
  ``\\x1...xm. f e1 ... en`` from Definition 3.1, with the head ``f`` always a
  named declaration or bound variable and every argument again in LNF.  This
  is the shape the synthesizer produces, and the shape the paper's depth
  measure ``D`` is defined on.

Both representations are immutable, hashable and compare structurally, which
makes them safe as dictionary keys in memo tables.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Union

from repro.core.types import Arrow, BaseType, Type, argument_types, final_result, uncurry


# ---------------------------------------------------------------------------
# Generic lambda terms
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Variable:
    """A named variable occurrence."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Abstraction:
    """Single-binder abstraction ``\\name: tpe. body``."""

    parameter: str
    parameter_type: Type
    body: "Term"

    def __str__(self) -> str:
        return format_term(self)


@dataclass(frozen=True)
class Application:
    """Application ``function argument``."""

    function: "Term"
    argument: "Term"

    def __str__(self) -> str:
        return format_term(self)


Term = Union[Variable, Abstraction, Application]


def abstraction(parameters: list[tuple[str, Type]], body: Term) -> Term:
    """Build the nested abstraction ``\\p1...pn. body``."""
    for name, tpe in reversed(parameters):
        body = Abstraction(name, tpe, body)
    return body


def application(function: Term, *arguments: Term) -> Term:
    """Build the left-nested application ``function a1 ... an``."""
    for argument in arguments:
        function = Application(function, argument)
    return function


def free_variables(term: Term) -> frozenset[str]:
    """The free variable names of *term*."""
    if isinstance(term, Variable):
        return frozenset((term.name,))
    if isinstance(term, Abstraction):
        return free_variables(term.body) - {term.parameter}
    return free_variables(term.function) | free_variables(term.argument)


def _fresh_against(base_name: str, avoid: frozenset[str]) -> str:
    if base_name not in avoid:
        return base_name
    for index in itertools.count():
        candidate = f"{base_name}_{index}"
        if candidate not in avoid:
            return candidate
    raise AssertionError("unreachable")


def substitute(term: Term, name: str, replacement: Term) -> Term:
    """Capture-avoiding substitution ``term[name := replacement]``."""
    if isinstance(term, Variable):
        return replacement if term.name == name else term
    if isinstance(term, Application):
        return Application(
            substitute(term.function, name, replacement),
            substitute(term.argument, name, replacement),
        )
    assert isinstance(term, Abstraction)
    if term.parameter == name:
        return term
    if term.parameter in free_variables(replacement) and name in free_variables(term.body):
        avoid = free_variables(term.body) | free_variables(replacement) | {name}
        renamed = _fresh_against(term.parameter, avoid)
        body = substitute(term.body, term.parameter, Variable(renamed))
        return Abstraction(
            renamed, term.parameter_type, substitute(body, name, replacement)
        )
    return Abstraction(
        term.parameter, term.parameter_type, substitute(term.body, name, replacement)
    )


def beta_reduce_once(term: Term) -> tuple[Term, bool]:
    """One leftmost-outermost beta step.  Returns ``(term', reduced?)``."""
    if isinstance(term, Application):
        if isinstance(term.function, Abstraction):
            inner = term.function
            return substitute(inner.body, inner.parameter, term.argument), True
        function, reduced = beta_reduce_once(term.function)
        if reduced:
            return Application(function, term.argument), True
        argument, reduced = beta_reduce_once(term.argument)
        return Application(term.function, argument), reduced
    if isinstance(term, Abstraction):
        body, reduced = beta_reduce_once(term.body)
        return Abstraction(term.parameter, term.parameter_type, body), reduced
    return term, False


def beta_normalize(term: Term, max_steps: int = 10_000) -> Term:
    """Normal-order beta normalisation.

    Simply typed terms are strongly normalising, so this terminates for every
    well-typed input; *max_steps* guards against ill-typed test inputs.
    """
    for _ in range(max_steps):
        term, reduced = beta_reduce_once(term)
        if not reduced:
            return term
    raise RecursionError("beta normalisation exceeded the step budget")


def alpha_equivalent(left: Term, right: Term) -> bool:
    """Structural equality of *left* and *right* up to bound-variable names."""

    def walk(a: Term, b: Term, env_a: dict[str, int], env_b: dict[str, int],
             level: int) -> bool:
        if isinstance(a, Variable) and isinstance(b, Variable):
            in_a, in_b = a.name in env_a, b.name in env_b
            if in_a != in_b:
                return False
            if in_a:
                return env_a[a.name] == env_b[b.name]
            return a.name == b.name
        if isinstance(a, Abstraction) and isinstance(b, Abstraction):
            if a.parameter_type != b.parameter_type:
                return False
            env_a2 = dict(env_a)
            env_b2 = dict(env_b)
            env_a2[a.parameter] = level
            env_b2[b.parameter] = level
            return walk(a.body, b.body, env_a2, env_b2, level + 1)
        if isinstance(a, Application) and isinstance(b, Application):
            return (walk(a.function, b.function, env_a, env_b, level)
                    and walk(a.argument, b.argument, env_a, env_b, level))
        return False

    return walk(left, right, {}, {}, 0)


def format_term(term: Term) -> str:
    """Render a generic term with conventional parenthesisation."""
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Abstraction):
        binders = []
        body: Term = term
        while isinstance(body, Abstraction):
            binders.append(f"{body.parameter}:{body.parameter_type}")
            body = body.body
        return "\\" + " ".join(binders) + ". " + format_term(body)
    assert isinstance(term, Application)
    function = format_term(term.function)
    if isinstance(term.function, Abstraction):
        function = f"({function})"
    argument = format_term(term.argument)
    if isinstance(term.argument, (Abstraction, Application)):
        argument = f"({argument})"
    return f"{function} {argument}"


# ---------------------------------------------------------------------------
# Long-normal-form terms
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Binder:
    """A typed lambda binder ``name : tpe`` in an LNF term."""

    name: str
    type: Type

    def __str__(self) -> str:
        return f"{self.name}:{self.type}"


@dataclass(frozen=True)
class LNFTerm:
    """A term ``\\b1...bm. head a1 ... an`` in long normal form (Def. 3.1).

    ``head`` is the name of a declaration from the environment or of one of
    the enclosing binders; every argument is itself an :class:`LNFTerm`.
    """

    binders: tuple[Binder, ...]
    head: str
    arguments: tuple["LNFTerm", ...] = field(default=())

    def __str__(self) -> str:
        return format_lnf(self)

    @property
    def is_closed_application(self) -> bool:
        """True when the term has no binders (a bare application)."""
        return not self.binders


def lnf(head: str, *arguments: LNFTerm, binders: tuple[Binder, ...] = ()) -> LNFTerm:
    """Convenience constructor for LNF terms."""
    return LNFTerm(binders, head, tuple(arguments))


def lnf_depth(term: LNFTerm) -> int:
    """The paper's depth measure ``D`` (§3.1).

    ``D(\\xs. a) = 1`` for a bare head, and
    ``D(\\xs. f e1...en) = max(D(ei)) + 1`` otherwise.
    """
    if not term.arguments:
        return 1
    return max(lnf_depth(argument) for argument in term.arguments) + 1


def lnf_size(term: LNFTerm) -> int:
    """Number of head occurrences in the term (declaration count)."""
    return 1 + sum(lnf_size(argument) for argument in term.arguments)


def lnf_heads(term: LNFTerm) -> tuple[str, ...]:
    """All head names, preorder.  Useful for rank matching and weights."""
    heads = [term.head]
    for argument in term.arguments:
        heads.extend(lnf_heads(argument))
    return tuple(heads)


def lnf_to_term(term: LNFTerm) -> Term:
    """Convert LNF representation to a generic lambda term."""
    body: Term = Variable(term.head)
    for argument in term.arguments:
        body = Application(body, lnf_to_term(argument))
    return abstraction([(b.name, b.type) for b in term.binders], body)


def lnf_alpha_equivalent(left: LNFTerm, right: LNFTerm) -> bool:
    """Alpha-equivalence on LNF terms via the generic representation."""
    return alpha_equivalent(lnf_to_term(left), lnf_to_term(right))


def format_lnf(term: LNFTerm) -> str:
    """Render an LNF term; arguments parenthesised when compound."""
    parts = []
    if term.binders:
        parts.append("\\" + " ".join(str(b) for b in term.binders) + ".")
    parts.append(term.head)
    for argument in term.arguments:
        rendered = format_lnf(argument)
        if argument.arguments or argument.binders:
            rendered = f"({rendered})"
        parts.append(rendered)
    return " ".join(parts)


def canonicalize_lnf(term: LNFTerm) -> LNFTerm:
    """Rename binders to a canonical preorder numbering.

    Two LNF terms are alpha-equivalent iff their canonical forms are equal,
    which lets tests compare *sets* of terms (Theorem 3.3) cheaply.
    """

    def walk(node: LNFTerm, renaming: dict[str, str], counter: list[int]) -> LNFTerm:
        inner = dict(renaming)
        binders = []
        for binder in node.binders:
            fresh = f"_b{counter[0]}"
            counter[0] += 1
            inner[binder.name] = fresh
            binders.append(Binder(fresh, binder.type))
        head = inner.get(node.head, node.head)
        arguments = tuple(walk(argument, inner, counter)
                          for argument in node.arguments)
        return LNFTerm(tuple(binders), head, arguments)

    return walk(term, {}, [0])


def eta_long_form(term: Term, term_type: Type,
                  variable_types: Mapping[str, Type]) -> LNFTerm:
    """Convert a beta-normal *term* of type *term_type* to long normal form.

    Implements the standard eta-expansion to LNF (the conversion the paper
    cites from Dowek [6]): every head is applied to exactly as many arguments
    as its type demands, introducing fresh binders where the term is
    under-applied.

    *variable_types* must give types for every free variable of *term*.
    Raises :class:`ValueError` for terms that are not beta-normal.
    """
    expected_args, _ = uncurry(term_type)
    scope: dict[str, Type] = dict(variable_types)

    binders: list[Binder] = []
    body = term
    # Peel explicit binders, tracking their types.
    while isinstance(body, Abstraction):
        binders.append(Binder(body.parameter, body.parameter_type))
        scope[body.parameter] = body.parameter_type
        body = body.body
    # Eta-expand missing binders.
    used = set(scope) | free_variables(body) | {b.name for b in binders}
    extra: list[Binder] = []
    for position in range(len(binders), len(expected_args)):
        name = _fresh_against(f"eta{position}", frozenset(used))
        used.add(name)
        binder = Binder(name, expected_args[position])
        extra.append(binder)
        scope[name] = expected_args[position]

    # Decompose the application spine.
    spine: list[Term] = []
    head = body
    while isinstance(head, Application):
        spine.append(head.argument)
        head = head.function
    spine.reverse()
    if not isinstance(head, Variable):
        raise ValueError(f"term is not beta-normal: head is {head!r}")
    if head.name not in scope:
        raise ValueError(f"free variable {head.name!r} has no declared type")

    head_args = list(argument_types(scope[head.name]))
    full_spine = spine + [Variable(binder.name) for binder in extra]
    if len(full_spine) != len(head_args):
        raise ValueError(
            f"head {head.name!r} applied to {len(full_spine)} arguments, "
            f"its type takes {len(head_args)}"
        )
    converted = tuple(
        eta_long_form(argument, head_args[index], scope)
        for index, argument in enumerate(full_spine)
    )
    return LNFTerm(tuple(binders) + tuple(extra), head.name, converted)


def is_long_normal_form(term: LNFTerm, term_type: Type,
                        variable_types: Mapping[str, Type]) -> bool:
    """Check Definition 3.1 structurally (used by tests as an invariant).

    The head must be fully applied according to its declared type, the
    binders must match the curried arguments of *term_type*, and every
    argument must recursively be in long normal form.
    """
    expected_args, _ = uncurry(term_type)
    if len(term.binders) != len(expected_args):
        return False
    for binder, expected in zip(term.binders, expected_args):
        if binder.type != expected:
            return False
    scope = dict(variable_types)
    for binder in term.binders:
        scope[binder.name] = binder.type
    if term.head not in scope:
        return False
    head_args = argument_types(scope[term.head])
    if len(term.arguments) != len(head_args):
        return False
    return all(
        is_long_normal_form(argument, head_args[index], scope)
        for index, argument in enumerate(term.arguments)
    )
