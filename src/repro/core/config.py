"""Synthesis configuration (paper §5.6 and §7.5).

The paper's deployment exposes two user-facing budgets — a prover limit
(0.5 s in the evaluation) and a reconstruction limit (7 s) — plus the number
of snippets to display (N = 10).  :class:`SynthesisConfig` captures those and
the engineering knobs the implementation sections describe: the exploration
queue discipline (weighted priority vs. plain FIFO) and the interleaving of
exploration with pattern generation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class SynthesisConfig:
    """Budgets and strategy switches for one synthesis invocation."""

    #: Maximum number of snippets to return (the paper's N; Table 2 uses 10).
    max_snippets: int = 10
    #: Wall-clock budget for the prover = explore + pattern phases (§5.6).
    prover_time_limit: Optional[float] = 0.5
    #: Wall-clock budget for term reconstruction (§7.5 uses 7 s).
    reconstruction_time_limit: Optional[float] = 7.0
    #: Hard cap on explored requests (safety net; None = unbounded).
    max_explore_nodes: Optional[int] = 200_000
    #: Hard cap on reconstruction queue expansions (safety net).
    max_reconstruction_steps: Optional[int] = 500_000
    #: Optional cap on term size (head count) during reconstruction.
    max_term_size: Optional[int] = None
    #: Weighted priority queue in exploration (§5.6); False = FIFO.
    prioritised_exploration: bool = True
    #: Interleave pattern generation with exploration (§5.6).
    interleaved: bool = True

    @staticmethod
    def paper_defaults() -> "SynthesisConfig":
        """The §7.5 evaluation settings: N=10, 0.5 s prover, 7 s recon."""
        return SynthesisConfig()

    @staticmethod
    def exhaustive() -> "SynthesisConfig":
        """No time limits — used by tests that enumerate everything."""
        return SynthesisConfig(max_snippets=10_000,
                               prover_time_limit=None,
                               reconstruction_time_limit=None)

    def with_(self, **overrides) -> "SynthesisConfig":
        """A copy with some fields replaced."""
        return replace(self, **overrides)
