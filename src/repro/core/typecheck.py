"""Type checkers (paper Fig. 2 and §6).

Three checkers, used throughout the tests as ground truth:

* :func:`infer_type` — standard STLC type inference for generic terms.
* :func:`check_lnf` — the long-normal-form judgement of Fig. 2: the head of
  every application spine must be a declared name, applied to exactly as
  many arguments as its type takes, and the result of every abstraction body
  must be a basic type.
* :func:`check_lnf_subsumed` — the same judgement extended with the
  subsumption rule of §6, validating coercion-erased snippets against a
  subtype graph.

All three raise :class:`TypeCheckError` with a readable message on failure;
the ``*_ok`` wrappers return booleans for use in property tests.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.errors import TypeCheckError, UnknownDeclarationError
from repro.core.subtyping import SubtypeGraph
from repro.core.terms import (Abstraction, Application, LNFTerm, Term,
                              Variable)
from repro.core.types import (Arrow, BaseType, Type, argument_types,
                              final_result, is_base, uncurry)


def infer_type(term: Term, variable_types: Mapping[str, Type]) -> Type:
    """Infer the simple type of a generic *term*.

    *variable_types* supplies the types of free variables (the environment
    Gamma_o plus any enclosing binders).
    """
    if isinstance(term, Variable):
        tpe = variable_types.get(term.name)
        if tpe is None:
            raise UnknownDeclarationError(f"unbound variable {term.name!r}")
        return tpe
    if isinstance(term, Abstraction):
        inner = dict(variable_types)
        inner[term.parameter] = term.parameter_type
        return Arrow(term.parameter_type, infer_type(term.body, inner))
    assert isinstance(term, Application)
    function_type = infer_type(term.function, variable_types)
    if not isinstance(function_type, Arrow):
        raise TypeCheckError(
            f"cannot apply non-function of type {function_type} in {term}")
    argument_type = infer_type(term.argument, variable_types)
    if argument_type != function_type.argument:
        raise TypeCheckError(
            f"argument type mismatch: expected {function_type.argument}, "
            f"got {argument_type} in {term}")
    return function_type.result


def check_term(term: Term, expected: Type,
               variable_types: Mapping[str, Type]) -> None:
    """Assert ``Gamma |- term : expected`` in plain STLC."""
    actual = infer_type(term, variable_types)
    if actual != expected:
        raise TypeCheckError(f"expected type {expected}, inferred {actual}")


def check_lnf(term: LNFTerm, expected: Type,
              variable_types: Mapping[str, Type]) -> None:
    """The long-normal-form judgement of Fig. 2 (APP + ABS).

    Checks, recursively:

    * the binders of *term* consume exactly the curried arguments of
      *expected* (ABS), leaving a basic result type;
    * the head is bound in scope and is applied to exactly ``arity`` many
      arguments (APP), each again in long normal form at the corresponding
      argument type;
    * the head's final result matches the expected basic type.
    """
    expected_args, expected_result = uncurry(expected)
    if len(term.binders) != len(expected_args):
        raise TypeCheckError(
            f"{term}: {len(term.binders)} binders for type {expected} "
            f"(needs {len(expected_args)})")
    scope = dict(variable_types)
    for binder, expected_arg in zip(term.binders, expected_args):
        if binder.type != expected_arg:
            raise TypeCheckError(
                f"{term}: binder {binder} should have type {expected_arg}")
        scope[binder.name] = binder.type

    head_type = scope.get(term.head)
    if head_type is None:
        raise UnknownDeclarationError(f"{term}: unbound head {term.head!r}")
    head_args, head_result = uncurry(head_type)
    if head_result != expected_result:
        raise TypeCheckError(
            f"{term}: head returns {head_result}, expected {expected_result}")
    if len(term.arguments) != len(head_args):
        raise TypeCheckError(
            f"{term}: head {term.head!r} takes {len(head_args)} arguments, "
            f"got {len(term.arguments)} (not in long normal form)")
    for argument, argument_type in zip(term.arguments, head_args):
        check_lnf(argument, argument_type, scope)


def check_lnf_subsumed(term: LNFTerm, expected: Type,
                       variable_types: Mapping[str, Type],
                       graph: SubtypeGraph) -> None:
    """Fig. 2 judgement extended with subsumption (§6).

    The head's result may be any subtype of the expected basic type, and each
    argument's synthesized type may be a subtype of the head's parameter
    type.  This is the judgement that coercion-erased snippets satisfy.
    """
    expected_args, expected_result = uncurry(expected)
    if len(term.binders) != len(expected_args):
        raise TypeCheckError(
            f"{term}: {len(term.binders)} binders for type {expected}")
    scope = dict(variable_types)
    for binder, expected_arg in zip(term.binders, expected_args):
        # Contravariance would allow a supertype binder; we require equality,
        # matching the coercion encoding (coercions only wrap applications).
        if binder.type != expected_arg:
            raise TypeCheckError(
                f"{term}: binder {binder} should have type {expected_arg}")
        scope[binder.name] = binder.type

    head_type = scope.get(term.head)
    if head_type is None:
        raise UnknownDeclarationError(f"{term}: unbound head {term.head!r}")
    head_args, head_result = uncurry(head_type)
    if not graph.is_subtype(head_result.name, expected_result.name):
        raise TypeCheckError(
            f"{term}: head returns {head_result}, not a subtype of "
            f"{expected_result}")
    if len(term.arguments) != len(head_args):
        raise TypeCheckError(
            f"{term}: head {term.head!r} takes {len(head_args)} arguments, "
            f"got {len(term.arguments)}")
    for argument, argument_type in zip(term.arguments, head_args):
        if is_base(argument_type) and not argument.binders:
            # Subsumption applies at basic argument positions.
            check_lnf_subsumed(argument, argument_type, scope, graph)
        else:
            check_lnf_subsumed(argument, argument_type, scope, graph)


def lnf_type_checks(term: LNFTerm, expected: Type,
                    variable_types: Mapping[str, Type],
                    graph: Optional[SubtypeGraph] = None) -> bool:
    """Boolean wrapper over the LNF checkers (for property tests)."""
    try:
        if graph is None:
            check_lnf(term, expected, variable_types)
        else:
            check_lnf_subsumed(term, expected, variable_types, graph)
    except (TypeCheckError, UnknownDeclarationError):
        return False
    return True
