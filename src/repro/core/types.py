"""Simple types for the lambda-calculus substrate (paper §3.1).

Types follow the grammar

    tau ::= tau -> tau | v          where v is a basic type

We keep the representation deliberately small: a :class:`BaseType` wraps a
name, an :class:`Arrow` is right-associative function space.  Helper functions
provide the curried views the rest of the system needs, most importantly
``uncurry`` which splits ``t1 -> ... -> tn -> v`` into ``([t1..tn], v)`` —
the shape used by the long-normal-form rules in Fig. 2 and by the succinct
conversion ``sigma`` in §3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Union


@dataclass(frozen=True)
class BaseType:
    """A basic (atomic) type such as ``Int`` or ``java.io.File``."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        # The generated dataclass hash builds a one-tuple per call; the
        # bare string hash (cached inside the str object) is equivalent
        # for dict purposes and measurably cheaper on the reconstruction
        # hot path, where base types key memo tables.
        return hash(self.name)

    def __getstate__(self):
        # Never pickle the cached per-process simple-type id (attached by
        # repro.core.space.simple_type_id): ids are process-local, so a
        # restored value could silently collide in a pool worker.
        state = dict(self.__dict__)
        state.pop("_simple_type_id", None)
        return state


@dataclass(frozen=True)
class Arrow:
    """Function type ``argument -> result`` (right-associative)."""

    argument: "Type"
    result: "Type"

    def __str__(self) -> str:
        return format_type(self)

    def __hash__(self) -> int:
        # Cached: arrows key many memo tables (candidate caches, completion
        # bounds, query keys) and the generated dataclass hash re-walks the
        # whole spine on every lookup.
        try:
            return object.__getattribute__(self, "_hash_cache")
        except AttributeError:
            value = hash((self.argument, self.result))
            object.__setattr__(self, "_hash_cache", value)
            return value

    def __getstate__(self):
        # Never pickle the cached hash (string hashing is per-process
        # randomised) nor the cached per-process simple-type id (see
        # repro.core.space.simple_type_id): a restored value would be
        # silently wrong — or collide — in the engine's pool workers.
        state = dict(self.__dict__)
        state.pop("_hash_cache", None)
        state.pop("_simple_type_id", None)
        return state


Type = Union[BaseType, Arrow]


def base(name: str) -> BaseType:
    """Construct a basic type."""
    return BaseType(name)


def arrow(*types: Type) -> Type:
    """Build the right-associated arrow ``t1 -> t2 -> ... -> tn``.

    With a single argument this is the identity; with none it is an error.

    >>> str(arrow(base("A"), base("B"), base("C")))
    'A -> B -> C'
    """
    if not types:
        raise ValueError("arrow() requires at least one type")
    result = types[-1]
    for argument in reversed(types[:-1]):
        result = Arrow(argument, result)
    return result


def function_type(arguments: Iterable[Type], result: Type) -> Type:
    """Build ``a1 -> ... -> an -> result`` from an argument list."""
    return arrow(*list(arguments), result)


def is_base(tpe: Type) -> bool:
    """True when *tpe* is a basic type."""
    return isinstance(tpe, BaseType)


def is_arrow(tpe: Type) -> bool:
    """True when *tpe* is a function type."""
    return isinstance(tpe, Arrow)


@lru_cache(maxsize=1 << 16)
def uncurry(tpe: Type) -> tuple[tuple[Type, ...], BaseType]:
    """Split ``t1 -> ... -> tn -> v`` into ``((t1, ..., tn), v)``.

    The final result of a simple type is always a basic type, so the second
    component is a :class:`BaseType`.  For a basic type the argument tuple is
    empty.  Memoised (reconstruction uncurries the same declaration types
    once per candidate-list build); callers treat the result as read-only.
    """
    arguments: list[Type] = []
    while isinstance(tpe, Arrow):
        arguments.append(tpe.argument)
        tpe = tpe.result
    assert isinstance(tpe, BaseType)
    return tuple(arguments), tpe


def argument_types(tpe: Type) -> tuple[Type, ...]:
    """The curried argument list of *tpe* (empty for basic types)."""
    return uncurry(tpe)[0]


def final_result(tpe: Type) -> BaseType:
    """The basic type at the end of the arrow spine."""
    return uncurry(tpe)[1]


def arity(tpe: Type) -> int:
    """Number of curried arguments of *tpe*."""
    return len(uncurry(tpe)[0])


def size(tpe: Type) -> int:
    """Number of basic-type occurrences in *tpe* (a simple size measure)."""
    if isinstance(tpe, BaseType):
        return 1
    return size(tpe.argument) + size(tpe.result)


def depth(tpe: Type) -> int:
    """Nesting depth of *tpe*: basic types have depth 1."""
    if isinstance(tpe, BaseType):
        return 1
    return 1 + max(depth(tpe.argument), depth(tpe.result))


def base_types(tpe: Type) -> frozenset[str]:
    """All basic-type names occurring in *tpe*."""
    if isinstance(tpe, BaseType):
        return frozenset((tpe.name,))
    return base_types(tpe.argument) | base_types(tpe.result)


def subterms(tpe: Type) -> frozenset[Type]:
    """All subterm types of *tpe*, including *tpe* itself."""
    if isinstance(tpe, BaseType):
        return frozenset((tpe,))
    return frozenset((tpe,)) | subterms(tpe.argument) | subterms(tpe.result)


def format_type(tpe: Type) -> str:
    """Render *tpe* with minimal parentheses; arrows associate right.

    >>> format_type(arrow(arrow(base("A"), base("B")), base("C")))
    '(A -> B) -> C'
    """
    if isinstance(tpe, BaseType):
        return tpe.name
    argument = format_type(tpe.argument)
    if isinstance(tpe.argument, Arrow):
        argument = f"({argument})"
    return f"{argument} -> {format_type(tpe.result)}"


@lru_cache(maxsize=None)
def _parse_cached(text: str) -> Type:
    from repro.lang.parser import parse_type  # local import: avoid a cycle

    return parse_type(text)


def parse(text: str) -> Type:
    """Parse a type expression such as ``"(A -> B) -> C"``.

    A thin convenience wrapper over :func:`repro.lang.parser.parse_type`,
    memoised because tests and benchmarks parse the same strings repeatedly.
    """
    return _parse_cached(text)
