"""Command-line interface: InSynth as a terminal tool.

The subcommands mirror the library's main entry points::

    python -m repro.cli synthesize SCENE.ins [--n 10] [--variant full]
    python -m repro.cli batch SCENE.ins [SCENE2.ins ...] [--goals T1,T2]
    python -m repro.cli edit-session SCENE.ins --script STEPS.json
    python -m repro.cli warm SCENE.ins [--goals T1,T2] [--variants ...]
    python -m repro.cli serve [--port 8777] [--workers N] [--snapshot F]
    python -m repro.cli route [--backends N] [--journal F] [--snapshot-dir D]
    python -m repro.cli loadgen [--chaos] [--check BENCH_serve.json]
    python -m repro.cli bench [--rows 9,15,44] [--variants full,no_corpus]
    python -m repro.cli stats [--host H] [--port P] [--json]
    python -m repro.cli corpus-stats

``synthesize`` loads a scene written in the declaration language (see
`repro.lang`), runs the requested algorithm variant and prints the ranked
suggestions — the closest a terminal gets to the paper's Ctrl+Space.
``batch`` serves many goals over many scenes in one invocation through the
:class:`~repro.engine.CompletionEngine` (optionally on a process pool);
with ``-`` (or ``--stdin``) it instead reads one JSON query per stdin
line — ``{"scene": "a.ins", "goal": "Reader", "variant": "full", "n": 5}``
— which is how the load tools pipe workloads in.  ``edit-session``
replays a scripted incremental session (`repro.incremental`): it opens
the scene as a :class:`~repro.incremental.SceneSession`, then walks a
JSON list of ``{"edit": [ops]}`` / ``{"complete": {...}}`` steps,
printing each delta outcome and ranked completion; with
``--connect HOST:PORT`` the same script drives a running server or
router over protocol v2 (``/v1/edit-scene``) instead, and ``--stream``
consumes completions as NDJSON chunks as the backend emits them.
``warm`` pre-populates
the engine's result cache and reports the cold/warm speedup.  ``serve``
runs the long-lived asyncio completion server (`repro.server`); with
``--workers N`` cache-miss syntheses fan out over a process pool for real
CPU parallelism, and with ``--snapshot PATH`` the result cache persists
across restarts (restored at startup, re-saved as syntheses land).
``route`` runs the sharded router (`repro.server.router`): it spawns and
supervises N backend servers, routes scenes over a consistent hash ring,
journals every registration for replica warm-up, and aggregates backend
stats; ``--check-config`` validates the shard map and exits (CI's
fail-fast dry run).  ``loadgen`` is the trace-driven load/chaos/SLO
harness (`repro.loadgen`): it generates (or loads) a reproducible
workload trace, replays it against a spawned or attached topology,
optionally SIGKILLs backends mid-burst (``--chaos``), and emits/gates
the ``BENCH_serve.json`` report (``--output`` / ``--check``) — the
serving-side twin of ``repro.bench.core_bench``.  ``bench`` runs Table 2
rows; ``stats`` pretty-prints a
running server's ``/v1/stats`` (cache, intern-table and environment-arena
counters); ``corpus-stats`` prints the §7.3 marginals.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.config import SynthesisConfig
from repro.core.errors import ReproError
from repro.core.synthesizer import Synthesizer


def _add_context_flags(parser: argparse.ArgumentParser) -> None:
    """Per-query ranking hints (``CompletionContext``), shared by the
    commands that serve ranked snippets."""
    parser.add_argument("--receiver-type", default=None, metavar="TYPE",
                        help="ranking hint: the type of the receiver "
                             "expression at the cursor")
    parser.add_argument("--enclosing-class", default=None, metavar="NAME",
                        help="ranking hint: the class whose body holds "
                             "the cursor")
    parser.add_argument("--position-kind", default=None,
                        choices=("expression", "after_new",
                                 "member_access", "statement"),
                        help="ranking hint: what kind of hole the cursor "
                             "sits in")


def _context_from_args(args: argparse.Namespace):
    """Build a CompletionContext from the CLI hint flags, or None."""
    from repro.core.ranking import CompletionContext

    payload = {}
    if getattr(args, "receiver_type", None):
        payload["receiver_type"] = args.receiver_type
    if getattr(args, "enclosing_class", None):
        payload["enclosing_class"] = args.enclosing_class
    if getattr(args, "position_kind", None):
        payload["position_kind"] = args.position_kind
    if not payload:
        return None
    return CompletionContext.from_payload(payload)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Complete completion using types and weights "
                    "(PLDI 2013 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    synthesize = commands.add_parser(
        "synthesize", help="synthesize snippets for a declaration-file scene")
    synthesize.add_argument("scene", help="path to a .ins environment file")
    synthesize.add_argument("--n", type=int, default=10,
                            help="number of snippets to return (default 10)")
    synthesize.add_argument("--variant", default="full",
                            choices=("full", "no_corpus", "no_weights"),
                            help="weight-policy variant (default full)")
    synthesize.add_argument("--goal", default=None,
                            help="override the file's goal type")
    synthesize.add_argument("--show-weights", action="store_true",
                            help="print each snippet's weight")
    synthesize.add_argument("--prover-limit", type=float, default=0.5,
                            help="prover time budget, seconds (default 0.5)")
    synthesize.add_argument("--recon-limit", type=float, default=7.0,
                            help="reconstruction budget, seconds (default 7)")
    synthesize.add_argument("--rerank", action="store_true",
                            help="apply the standard post-reconstruction "
                                 "weigher chain (any context hint flag "
                                 "implies this)")
    _add_context_flags(synthesize)

    batch = commands.add_parser(
        "batch", help="serve many goals/scenes in one engine invocation")
    batch.add_argument("scenes", nargs="*",
                       help="paths to .ins environment files; '-' reads "
                            "JSON queries (one per line) from stdin")
    batch.add_argument("--stdin", action="store_true",
                       help="read JSON queries from stdin (same as '-')")
    batch.add_argument("--goals", default=None,
                       help="comma-separated goal types queried on every "
                            "scene (default: each scene's own goal)")
    batch.add_argument("--n", type=int, default=10,
                       help="snippets per query (default 10)")
    batch.add_argument("--variant", default="full",
                       choices=("full", "no_corpus", "no_weights"),
                       help="weight-policy variant (default full)")
    batch.add_argument("--workers", type=int, default=1,
                       help="process-pool workers (default 1 = sequential)")
    batch.add_argument("--show-weights", action="store_true",
                       help="print each snippet's weight")

    edit_session = commands.add_parser(
        "edit-session",
        help="replay a scripted incremental edit/complete session")
    edit_session.add_argument("scene", help="path to the opening .ins scene")
    edit_session.add_argument("--script", required=True, metavar="PATH",
                              help="JSON session script: a list (or "
                                   "{\"steps\": [...]}) of {\"edit\": [ops]} "
                                   "/ {\"complete\": {...}} steps")
    edit_session.add_argument("--connect", default=None, metavar="HOST:PORT",
                              help="drive a running server/router over the "
                                   "wire protocol instead of an in-process "
                                   "engine session")
    edit_session.add_argument("--stream", action="store_true",
                              help="consume completions as NDJSON chunks "
                                   "(requires --connect)")
    edit_session.add_argument("--n", type=int, default=5,
                              help="snippets per completion unless the step "
                                   "overrides it (default 5)")
    edit_session.add_argument("--variant", default="full",
                              choices=("full", "no_corpus", "no_weights"),
                              help="weight-policy variant unless the step "
                                   "overrides it (default full)")
    _add_context_flags(edit_session)
    edit_session.add_argument("--show-weights", action="store_true",
                              help="print each snippet's weight")

    serve = commands.add_parser(
        "serve", help="run the long-lived asyncio completion server")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8777,
                       help="bind port; 0 picks an ephemeral port "
                            "(default 8777)")
    serve.add_argument("--scenes", nargs="*", default=[],
                       help=".ins files to pre-register at startup")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="admission-control bound on queued syntheses "
                            "(default 64)")
    serve.add_argument("--max-scenes", type=int, default=32,
                       help="registered-scene LRU size (default 32)")
    serve.add_argument("--executor-workers", type=int, default=4,
                       help="synthesis executor threads (default 4)")
    serve.add_argument("--workers", type=int, default=1,
                       help="synthesis process-pool workers (default 1 = "
                            "threads only; N > 1 adds CPU throughput by "
                            "fanning cache misses over N processes)")
    serve.add_argument("--deadline-ms", type=int, default=None,
                       help="default per-request deadline when the client "
                            "sends none")
    serve.add_argument("--gc-tune", action="store_true",
                       help="tune the collector for serving: freeze each "
                            "prepared scene into the permanent generation "
                            "and raise the collection thresholds (gen-2 "
                            "pauses are the main warm-latency noise)")
    serve.add_argument("--gc-thresholds", default=None, metavar="G0[,G1,G2]",
                       help="collection thresholds applied with --gc-tune "
                            "(default 50000,25,25)")
    serve.add_argument("--snapshot", default=None, metavar="PATH",
                       help="result-cache snapshot file: restored at "
                            "startup (warm replica start) and re-saved "
                            "after syntheses and on shutdown")
    serve.add_argument("--snapshot-interval", type=float, default=0.0,
                       help="minimum seconds between snapshot saves "
                            "(default 0 = save after every synthesis)")
    serve.add_argument("--project-weights", default=None, metavar="PATH",
                       help="per-project weight tables JSON (a "
                            "ProjectWeightTables.save document) feeding the "
                            "ranking stage; the merged global table is the "
                            "fallback for unattributed scenes")
    serve.add_argument("--no-rerank", action="store_true",
                       help="serve base corpus-weight order (disable the "
                            "post-reconstruction weigher chain)")
    serve.add_argument("--inject-latency-ms", type=int, default=0,
                       help="debug fault injection: sleep this long before "
                            "serving each completion — a gray-failed "
                            "(alive but slow) backend for chaos tests "
                            "(default 0 = off)")

    route = commands.add_parser(
        "route", help="run the sharded completion router over N backends")
    route.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    route.add_argument("--port", type=int, default=8787,
                       help="bind port; 0 picks an ephemeral port "
                            "(default 8787)")
    route.add_argument("--backends", type=int, default=2,
                       help="backend server processes to spawn and "
                            "supervise (default 2)")
    route.add_argument("--attach", default=None, metavar="H:P[,H:P...]",
                       help="route over already-running backends instead "
                            "of spawning (comma-separated host:port)")
    route.add_argument("--journal", default=None, metavar="PATH",
                       help="durable scene journal (JSONL); replayed "
                            "into backends on restart/scale-up")
    route.add_argument("--snapshot-dir", default=None, metavar="DIR",
                       help="per-backend result-cache snapshot directory "
                            "so respawned replicas start warm")
    route.add_argument("--replication", type=int, default=2,
                       help="distinct ring owners per scene (default 2: "
                            "one SIGKILL never stalls a scene)")
    route.add_argument("--ring-replicas", type=int, default=64,
                       help="virtual nodes per backend on the hash ring "
                            "(default 64)")
    route.add_argument("--scenes", nargs="*", default=[],
                       help=".ins files to pre-register at startup")
    route.add_argument("--workers", type=int, default=None,
                       help="per-backend synthesis process-pool workers "
                            "(forwarded to each spawned repro serve)")
    route.add_argument("--max-scenes", type=int, default=None,
                       help="per-backend registered-scene LRU size "
                            "(forwarded to each spawned repro serve)")
    route.add_argument("--check-config", action="store_true",
                       help="validate the configuration (shard map, "
                            "journal, snapshot dir) and exit without "
                            "spawning anything — CI's fail-fast dry run")

    warm = commands.add_parser(
        "warm", help="pre-populate the engine result cache for a scene")
    warm.add_argument("scene", help="path to a .ins environment file")
    warm.add_argument("--goals", default=None,
                      help="comma-separated goal types (default: the "
                           "scene's own goal)")
    warm.add_argument("--variants", default="full",
                      help="comma-separated variants to warm (default full)")
    warm.add_argument("--n", type=int, default=10,
                      help="snippets per query (default 10)")

    bench = commands.add_parser("bench",
                                help="run Table 2 benchmark rows")
    bench.add_argument("--rows", default=None,
                       help="comma-separated row numbers (default: all 50)")
    bench.add_argument("--variants", default="no_weights,no_corpus,full",
                       help="comma-separated variants to run")
    bench.add_argument("--n", type=int, default=10)
    bench.add_argument("--repeats", type=int, default=3,
                       help="timing runs per row; the median-total run's "
                            "prove/recon/total is reported (default 3, "
                            "the re-baselining convention)")

    loadgen = commands.add_parser(
        "loadgen",
        help="trace-driven load, chaos, and SLO harness for the "
             "serving stack")
    loadgen.add_argument("--profile", default="ci",
                         choices=("smoke", "ci", "soak"),
                         help="workload scale preset (default ci — the "
                              "committed BENCH_serve.json workload)")
    loadgen.add_argument("--seed", type=int, default=None,
                         help="explicit trace seed threaded through every "
                              "stochastic path and into the report "
                              "(default: the profile's seed)")
    loadgen.add_argument("--emit-trace", default=None, metavar="PATH",
                         help="generate the trace, write it to PATH, and "
                              "exit without replaying (byte-identical for "
                              "identical seed/profile)")
    loadgen.add_argument("--trace", default=None, metavar="PATH",
                         help="replay this trace file instead of "
                              "generating one")
    loadgen.add_argument("--backends", type=int, default=2,
                         help="backends of the spawned router topology "
                              "(default 2)")
    loadgen.add_argument("--replication", type=int, default=2,
                         help="replica owners per scene in the spawned "
                              "topology (default 2)")
    loadgen.add_argument("--attach", default=None, metavar="HOST:PORT",
                         help="drive an already-running server/router "
                              "instead of spawning a topology (chaos "
                              "needs a supervised router)")
    loadgen.add_argument("--chaos", action="store_true",
                         help="SIGKILL backend(s) mid-burst and require "
                              "recovery inside the error budget with "
                              "post-respawn warm hits")
    loadgen.add_argument("--kills", type=int, default=1,
                         help="backends to kill with --chaos (default 1)")
    loadgen.add_argument("--slow", action="store_true",
                         help="with --chaos: SIGSTOP backend(s) mid-burst "
                              "instead of SIGKILL (the gray failure — "
                              "alive, accepting, stalled), SIGCONT after "
                              "--stall-s; recovery means rejoining, not "
                              "respawning")
    loadgen.add_argument("--stall-s", type=float, default=2.0,
                         help="SIGSTOP hold per --slow stall, scaled by "
                              "--time-scale (default 2.0)")
    loadgen.add_argument("--deadline-ms", type=int, default=None,
                         help="stamp this end-to-end deadline (and budget) "
                              "on every replayed completion; "
                              "deadline_exceeded answers land in their "
                              "own report bucket, not the error budget")
    loadgen.add_argument("--time-scale", type=float, default=1.0,
                         help="multiply trace timestamps (0.5 = replay "
                              "twice as fast; default 1.0)")
    loadgen.add_argument("--workdir", default=None, metavar="DIR",
                         help="journal/snapshot directory for the spawned "
                              "topology (default: a fresh temp dir)")
    loadgen.add_argument("--output", default=None, metavar="PATH",
                         help="write the measured BENCH_serve.json report "
                              "to this path")
    loadgen.add_argument("--check", default=None,
                         metavar="BENCH_serve.json",
                         help="compare against a committed report and fail "
                              "on p95 regression, SLO violation, or lost "
                              "chaos coverage")
    loadgen.add_argument("--max-regression", type=float, default=0.25,
                         help="allowed fractional summed-p95 regression "
                              "for --check (default 0.25)")

    stats = commands.add_parser(
        "stats", help="fetch and pretty-print a running server's /v1/stats")
    stats.add_argument("--host", default="127.0.0.1",
                       help="server address (default 127.0.0.1)")
    stats.add_argument("--port", type=int, default=8777,
                       help="server port (default 8777)")
    stats.add_argument("--json", action="store_true",
                       help="print the raw JSON payload instead")

    commands.add_parser("corpus-stats",
                        help="print the §7.3 corpus marginals")
    return parser


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.bench.runner import policy_for
    from repro.lang.loader import load_environment_file
    from repro.lang.parser import parse_type

    loaded = load_environment_file(args.scene)
    goal = parse_type(args.goal) if args.goal else loaded.goal
    if goal is None:
        print("error: the scene has no goal; pass --goal TYPE",
              file=sys.stderr)
        return 2

    config = SynthesisConfig(max_snippets=args.n,
                             prover_time_limit=args.prover_limit,
                             reconstruction_time_limit=args.recon_limit)
    synthesizer = Synthesizer(loaded.environment,
                              policy=policy_for(args.variant),
                              config=config, subtypes=loaded.subtypes)
    result = synthesizer.synthesize(goal, n=args.n)

    try:
        context = _context_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    reranked = False
    if args.rerank or context is not None:
        from repro.core.ranking import RankingPipeline

        outcome = RankingPipeline.standard().rerank(
            result, loaded.environment, context)
        result, reranked = outcome.result, outcome.applied

    print(f"goal: {goal}   ({len(loaded.environment)} declarations, "
          f"variant {args.variant})")
    if not result.inhabited:
        print("the goal type is not inhabited in this environment")
        return 1
    for snippet in result.snippets:
        if args.show_weights:
            print(f"{snippet.rank:>3}. [{snippet.weight:8.1f}] {snippet.code}")
        else:
            print(f"{snippet.rank:>3}. {snippet.code}")
    print(f"-- prove {result.prove_seconds * 1000:.0f} ms, "
          f"reconstruct {result.reconstruction_seconds * 1000:.0f} ms"
          f"{', reranked' if reranked else ''}")
    return 0


def _parse_goals(raw: Optional[str]):
    from repro.lang.parser import parse_type

    if not raw:
        return None
    return [parse_type(part.strip()) for part in raw.split(",")
            if part.strip()]


def _read_stdin_queries(stream) -> list[dict]:
    """Parse one JSON query object per line (blank lines skipped)."""
    import json

    from repro.engine.engine import VARIANTS as valid_variants

    entries = []
    for number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"stdin line {number}: invalid JSON: {exc}")
        if not isinstance(entry, dict) or "scene" not in entry:
            raise ValueError(
                f"stdin line {number}: expected an object with a 'scene' "
                f"path, got {line[:60]!r}")
        if not isinstance(entry["scene"], str):
            raise ValueError(
                f"stdin line {number}: 'scene' must be a path string")
        if not isinstance(entry.get("goal", ""), str):
            raise ValueError(
                f"stdin line {number}: 'goal' must be a type string")
        if entry.get("variant", "full") not in valid_variants:
            raise ValueError(
                f"stdin line {number}: 'variant' must be one of "
                f"{valid_variants}")
        n = entry.get("n", 1)
        if isinstance(n, bool) or not isinstance(n, int) or n < 1:
            raise ValueError(
                f"stdin line {number}: 'n' must be a positive integer")
        entries.append(entry)
    return entries


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.engine import CompletionEngine, EngineQuery
    from repro.lang.loader import load_environment_file
    from repro.lang.parser import parse_type

    use_stdin = args.stdin or "-" in args.scenes
    scene_paths = [path for path in args.scenes if path != "-"]
    if not use_stdin and not scene_paths:
        print("error: pass scene files, or '-'/--stdin for JSON queries "
              "on stdin", file=sys.stderr)
        return 2

    goals = _parse_goals(args.goals)
    engine = CompletionEngine()
    prepared_by_path: dict = {}

    def _prepared(path: str):
        prepared = prepared_by_path.get(path)
        if prepared is None:
            loaded = load_environment_file(path)
            prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                      goal=loaded.goal, name=path)
            prepared_by_path[path] = prepared
        return prepared

    queries: list[EngineQuery] = []
    labels: list[tuple[str, object]] = []
    for path in scene_paths:
        prepared = _prepared(path)
        scene_goals = goals if goals is not None else [prepared.goal]
        for goal in scene_goals:
            if goal is None:
                print(f"error: scene {path} has no goal; pass --goals",
                      file=sys.stderr)
                return 2
            queries.append(EngineQuery(goal=goal, scene=prepared,
                                       variant=args.variant, n=args.n))
            labels.append((path, goal))

    if use_stdin:
        try:
            entries = _read_stdin_queries(sys.stdin)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for entry in entries:
            prepared = _prepared(entry["scene"])
            goal = (parse_type(entry["goal"]) if entry.get("goal")
                    else prepared.goal)
            if goal is None:
                print(f"error: stdin query for {entry['scene']} has no "
                      f"goal (scene defines none)", file=sys.stderr)
                return 2
            queries.append(EngineQuery(
                goal=goal, scene=prepared,
                variant=entry.get("variant", args.variant),
                n=entry.get("n", args.n)))
            labels.append((entry["scene"], goal))

    if not queries:
        print("error: no queries (stdin was empty?)", file=sys.stderr)
        return 2

    served = engine.complete_batch(queries, max_workers=args.workers)

    failures = 0
    for (path, goal), query, outcome in zip(labels, queries, served):
        result = outcome.result
        source = "cache" if outcome.cache_hit else "computed"
        print(f"== {path} :: goal {goal}  "
              f"[{query.variant}, {source}, "
              f"{result.total_seconds * 1000:.0f} ms]")
        if not result.inhabited:
            failures += 1
            print("   (not inhabited)")
            continue
        for snippet in result.snippets:
            if args.show_weights:
                print(f"  {snippet.rank:>3}. [{snippet.weight:8.1f}] "
                      f"{snippet.code}")
            else:
                print(f"  {snippet.rank:>3}. {snippet.code}")
    print(f"-- {len(served)} queries over {len(prepared_by_path)} scenes; "
          f"cache: {engine.cache_stats.as_text()}")
    return 1 if failures else 0


def _session_steps(raw) -> list[dict]:
    """Validate a session script into its step list, or raise ValueError."""
    steps = raw.get("steps") if isinstance(raw, dict) else raw
    if not isinstance(steps, list) or not steps:
        raise ValueError("session script must be a non-empty JSON list "
                         "(or {\"steps\": [...]}) of steps")
    for number, step in enumerate(steps, start=1):
        if (not isinstance(step, dict) or len(step) != 1
                or next(iter(step)) not in ("edit", "complete")):
            raise ValueError(
                f"step {number}: expected exactly one of 'edit' or "
                f"'complete', got {step!r}")
        kind, body = next(iter(step.items()))
        if kind == "edit" and not (isinstance(body, list) and body):
            raise ValueError(
                f"step {number}: 'edit' must be a non-empty list of "
                f"delta ops")
        if kind == "complete" and not isinstance(body, (dict, type(None))):
            raise ValueError(f"step {number}: 'complete' must be an object")
    return steps


def _print_ranked(snippets, show_weights: bool) -> None:
    """Print (rank, weight, code) triples — objects or wire dicts."""
    for snippet in snippets:
        if isinstance(snippet, dict):
            rank, weight, code = (snippet["rank"], snippet["weight"],
                                  snippet["code"])
        else:
            rank, weight, code = snippet.rank, snippet.weight, snippet.code
        if show_weights:
            print(f"  {rank:>3}. [{weight:8.1f}] {code}")
        else:
            print(f"  {rank:>3}. {code}")


def _step_context(args: argparse.Namespace, spec: dict):
    """The step's own ``context`` object, else the CLI hint flags."""
    from repro.core.ranking import CompletionContext

    raw = spec.get("context")
    if raw:
        return CompletionContext.from_payload(raw)
    return _context_from_args(args)


def _edit_session_offline(args: argparse.Namespace, steps: list[dict]) -> int:
    from repro.core.ranking import RankingPipeline
    from repro.engine import CompletionEngine
    from repro.lang.loader import load_environment_file
    from repro.lang.parser import parse_type

    loaded = load_environment_file(args.scene)
    # The CLI session is an editor front end, so it ranks like the
    # server: standard weigher chain over the base engine results.
    engine = CompletionEngine(ranking=RankingPipeline.standard())
    prepared = engine.prepare(loaded.environment, loaded.subtypes,
                              goal=loaded.goal, name=args.scene)
    session = engine.open_session(prepared, name=args.scene)
    print(f"session: {args.scene} ({len(session)} declarations, "
          f"goal {session.goal})")
    for number, step in enumerate(steps, start=1):
        kind, body = next(iter(step.items()))
        if kind == "edit":
            outcome = session.apply_delta(body)
            state = ("reused warm state" if outcome.reused else
                     f"re-prepared, {outcome.dirty_types} dirty type(s)")
            print(f"[{number}] edit +{list(outcome.added)} "
                  f"-{list(outcome.removed)} -> "
                  f"{outcome.declarations} declarations ({state})")
        else:
            spec = body or {}
            goal = parse_type(spec["goal"]) if spec.get("goal") else None
            if goal is None and session.goal is None:
                print(f"error: step {number}: the scene has no goal; give "
                      f"the step a \"goal\"", file=sys.stderr)
                return 2
            variant = spec.get("variant", args.variant)
            try:
                context = _step_context(args, spec)
            except ValueError as exc:
                print(f"error: step {number}: {exc}", file=sys.stderr)
                return 2
            served = session.complete(goal, variant=variant,
                                      n=spec.get("n", args.n),
                                      context=context)
            source = "cache" if served.cache_hit else "computed"
            print(f"[{number}] complete goal {goal or session.goal} "
                  f"[{variant}, {source}"
                  f"{', reranked' if served.reranked else ''}]")
            _print_ranked(served.result.snippets, args.show_weights)
    print(f"-- generation {session.generation}, "
          f"{session.ops_applied} ops applied; "
          f"cache: {engine.cache_stats.as_text()}")
    return 0


def _edit_session_live(args: argparse.Namespace, steps: list[dict],
                       host: str, port: int) -> int:
    import asyncio
    from pathlib import Path

    from repro.server.client import AsyncCompletionClient

    text = Path(args.scene).read_text(encoding="utf-8")

    async def _run() -> int:
        async with AsyncCompletionClient(host, port) as client:
            registered = await client.register_scene(text, name=args.scene)
            scene_id = registered["scene_id"]
            print(f"session: {args.scene} -> {scene_id} "
                  f"({registered['declarations']} declarations, "
                  f"goal {registered.get('goal')})")
            for number, step in enumerate(steps, start=1):
                kind, body = next(iter(step.items()))
                if kind == "edit":
                    response = await client.edit_scene(scene_id, body,
                                                       name=args.scene)
                    scene_id = response["scene_id"]
                    state = ("reused warm state" if response.get("reused")
                             else "re-prepared")
                    print(f"[{number}] edit +{response.get('added')} "
                          f"-{response.get('removed')} -> {scene_id} "
                          f"({response.get('declarations')} declarations, "
                          f"{state})")
                    continue
                spec = body or {}
                variant = spec.get("variant", args.variant)
                try:
                    context = _step_context(args, spec)
                except ValueError as exc:
                    print(f"error: step {number}: {exc}", file=sys.stderr)
                    return 2
                kwargs = dict(goal=spec.get("goal"), variant=variant,
                              n=spec.get("n", args.n), context=context)
                if args.stream:
                    print(f"[{number}] complete [{variant}, streaming]")
                    async for chunk in client.complete_stream(scene_id,
                                                              **kwargs):
                        if chunk["chunk"] == "snippet":
                            _print_ranked([chunk], args.show_weights)
                        elif chunk["chunk"] == "done":
                            source = ("cache" if chunk.get("cache_hit")
                                      else "computed")
                            print(f"  -- done: goal {chunk.get('goal')} "
                                  f"[{source}, "
                                  f"{len(chunk.get('snippets', []))} "
                                  f"snippets]")
                else:
                    response = await client.complete(scene_id, **kwargs)
                    source = ("cache" if response.get("cache_hit")
                              else "computed")
                    print(f"[{number}] complete goal {response.get('goal')} "
                          f"[{variant}, {source}]")
                    _print_ranked(response.get("snippets", []),
                                  args.show_weights)
        return 0

    return asyncio.run(_run())


def _cmd_edit_session(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    try:
        raw = json.loads(Path(args.script).read_text(encoding="utf-8"))
    except OSError as exc:
        print(f"error: cannot read session script: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: session script {args.script} is not valid JSON: "
              f"{exc}", file=sys.stderr)
        return 2
    try:
        steps = _session_steps(raw)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.connect is None:
        if args.stream:
            print("error: --stream needs --connect (streaming is a wire "
                  "feature; the in-process session ranks synchronously)",
                  file=sys.stderr)
            return 2
        return _edit_session_offline(args, steps)

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"error: --connect expects HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    return _edit_session_live(args, steps, host, int(port_text))


def _serve_until_stopped(serve_forever) -> "object":
    """Run an awaitable server loop until SIGTERM/SIGINT, then return.

    `asyncio.run` only turns SIGINT into KeyboardInterrupt; a plain
    SIGTERM (systemd stop, `process.terminate()` in the smoke harness)
    would kill the process before any `finally` runs — leaking supervised
    backend children and skipping the snapshot shutdown flush.  Where the
    platform supports it, both signals resolve to a clean return so the
    caller's `finally: close()` always executes.
    """
    import asyncio
    import signal

    async def _run():
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        hooked = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                hooked.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass                        # non-main thread / platform
        serve_task = asyncio.ensure_future(serve_forever())
        stop_task = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait({serve_task, stop_task},
                               return_when=asyncio.FIRST_COMPLETED)
            if serve_task.done():
                serve_task.result()         # surface server crashes
        finally:
            for task in (serve_task, stop_task):
                task.cancel()
            for signum in hooked:
                loop.remove_signal_handler(signum)

    return _run()


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.server import AsyncCompletionServer, ServerConfig
    from repro.server.protocol import MAX_DEADLINE_MS

    if args.deadline_ms is not None and not (
            1 <= args.deadline_ms <= MAX_DEADLINE_MS):
        print(f"error: --deadline-ms must be between 1 and "
              f"{MAX_DEADLINE_MS}, got {args.deadline_ms}", file=sys.stderr)
        return 2
    for flag, value in (("--max-pending", args.max_pending),
                        ("--max-scenes", args.max_scenes),
                        ("--executor-workers", args.executor_workers),
                        ("--workers", args.workers)):
        if value < 1:
            print(f"error: {flag} must be at least 1, got {value}",
                  file=sys.stderr)
            return 2
    gc_thresholds = ServerConfig.gc_thresholds
    if args.gc_thresholds is not None:
        try:
            parts = [int(part) for part in args.gc_thresholds.split(",")]
        except ValueError:
            parts = []
        if not 1 <= len(parts) <= 3 or any(part < 1 for part in parts):
            print(f"error: --gc-thresholds expects 1-3 positive integers "
                  f"(G0[,G1,G2]), got {args.gc_thresholds!r}",
                  file=sys.stderr)
            return 2
        gc_thresholds = tuple(parts + list(gc_thresholds[len(parts):]))
        if not args.gc_tune:
            print("warning: --gc-thresholds has no effect without "
                  "--gc-tune", file=sys.stderr)
    if args.snapshot_interval < 0:
        print(f"error: --snapshot-interval must be >= 0, got "
              f"{args.snapshot_interval}", file=sys.stderr)
        return 2
    if args.inject_latency_ms < 0:
        print(f"error: --inject-latency-ms must be >= 0, got "
              f"{args.inject_latency_ms}", file=sys.stderr)
        return 2
    if args.project_weights is not None:
        # Fail fast with the CLI's usual error contract, before binding
        # the port; the server re-loads the file itself at start().
        from repro.corpus.mining import ProjectWeightTables
        try:
            ProjectWeightTables.load(args.project_weights)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    config = ServerConfig(host=args.host, port=args.port,
                          max_pending=args.max_pending,
                          max_scenes=args.max_scenes,
                          executor_workers=args.executor_workers,
                          workers=args.workers,
                          default_deadline_ms=args.deadline_ms,
                          gc_tune=args.gc_tune,
                          gc_thresholds=gc_thresholds,
                          snapshot_path=args.snapshot,
                          snapshot_interval=args.snapshot_interval,
                          inject_latency_ms=args.inject_latency_ms,
                          rerank=not args.no_rerank,
                          project_weights_path=args.project_weights)
    server = AsyncCompletionServer(config=config)

    # Read the preload scenes before binding the port, so a typo'd path
    # fails fast with the CLI's usual error contract.
    scene_texts = []
    for path in args.scenes:
        try:
            scene_texts.append((path, Path(path).read_text(encoding="utf-8")))
        except OSError as exc:
            print(f"error: cannot read scene {path}: {exc}", file=sys.stderr)
            return 2

    async def _run() -> None:
        try:
            await server.start()
            print(f"serving on http://{server.host}:{server.port}",
                  flush=True)
            if args.snapshot is not None:
                print(f"snapshot: restored "
                      f"{server.metrics.snapshot_restored} "
                      f"cached results from {args.snapshot}", flush=True)
            for path, text in scene_texts:
                scene, already = await server.register_scene_text(text,
                                                                  name=path)
                state = "already registered" if already else "registered"
                print(f"scene {scene.scene_id} {state}: {path} "
                      f"({scene.declarations} declarations)", flush=True)
            await _serve_until_stopped(server.serve_forever)
        finally:
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.server.router import (CompletionRouter, RouterConfig,
                                     check_config)

    attach = tuple(part.strip() for part in (args.attach or "").split(",")
                   if part.strip())
    backend_args: list[str] = []
    for flag, value in (("--workers", args.workers),
                        ("--max-scenes", args.max_scenes)):
        if value is not None:
            if value < 1:
                print(f"error: {flag} must be at least 1, got {value}",
                      file=sys.stderr)
                return 2
            backend_args += [flag, str(value)]
    config = RouterConfig(host=args.host, port=args.port,
                          backends=args.backends, attach=attach,
                          journal_path=args.journal,
                          snapshot_dir=args.snapshot_dir,
                          ring_replicas=args.ring_replicas,
                          replication=args.replication,
                          backend_args=tuple(backend_args))

    # The dry run reads and validates the journal's contents; the real
    # startup path checks only paths/permissions — the router is about to
    # parse (and possibly compact) the file itself, so a second full read
    # would just double startup I/O.
    problems = check_config(config, read_journal=args.check_config)
    if args.check_config:
        mode = (f"attach {len(attach)} backend(s)" if attach
                else f"spawn {args.backends} backend(s)")
        print(f"router config: {mode}, replication {args.replication}, "
              f"ring replicas {args.ring_replicas}, journal "
              f"{args.journal or '(memory only)'}, snapshots "
              f"{args.snapshot_dir or '(disabled)'}")
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        print("config " + ("INVALID" if problems else "OK"))
        return 2 if problems else 0
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 2

    # Read preload scenes before spawning anything, like `repro serve`.
    scene_texts = []
    for path in args.scenes:
        try:
            scene_texts.append((path, Path(path).read_text(encoding="utf-8")))
        except OSError as exc:
            print(f"error: cannot read scene {path}: {exc}", file=sys.stderr)
            return 2

    router = CompletionRouter(config=config)

    async def _run() -> None:
        # One enclosing try: a failure while spawning backend k must
        # still terminate backends 0..k-1, and a SIGTERM must reach the
        # close() that tears the supervised children down.
        try:
            await router.start()
            for backend in router.backends.values():
                print(f"backend {backend.backend_id}: "
                      f"http://{backend.host}:{backend.port}"
                      f"{'' if backend.managed else ' (attached)'}",
                      flush=True)
            if len(router.journal):
                print(f"journal: {len(router.journal)} scene(s), "
                      f"{router.replayed} replayed", flush=True)
            print(f"routing on http://{router.host}:{router.port}",
                  flush=True)
            for path, text in scene_texts:
                response = await router.register_text(text, name=path)
                print(f"scene {response['scene_id']} registered: {path}",
                      flush=True)
            await _serve_until_stopped(router.serve_forever)
        finally:
            await router.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import dataclasses
    import json
    import subprocess
    import tempfile
    from pathlib import Path

    from repro.loadgen.chaos import ChaosPlan
    from repro.loadgen.driver import DriverConfig, replay_trace
    from repro.loadgen.slo import (build_report, check_regression,
                                   load_report)
    from repro.loadgen.traces import (PROFILES, generate_trace, load_trace,
                                      trace_digest, write_trace)
    from repro.server.router import spawn_cli_server

    if args.kills < 1:
        print(f"error: --kills must be at least 1, got {args.kills}",
              file=sys.stderr)
        return 2
    if args.time_scale <= 0:
        print(f"error: --time-scale must be positive, got "
              f"{args.time_scale}", file=sys.stderr)
        return 2
    if args.slow and not args.chaos:
        print("error: --slow requires --chaos", file=sys.stderr)
        return 2
    if args.stall_s <= 0:
        print(f"error: --stall-s must be positive, got {args.stall_s}",
              file=sys.stderr)
        return 2
    if args.deadline_ms is not None and args.deadline_ms < 1:
        print(f"error: --deadline-ms must be at least 1, got "
              f"{args.deadline_ms}", file=sys.stderr)
        return 2

    if args.trace is not None:
        trace = load_trace(args.trace)
        if args.seed is not None and trace.spec.seed != args.seed:
            print(f"error: --seed {args.seed} contradicts the loaded "
                  f"trace's seed {trace.spec.seed} (the trace is the "
                  f"source of truth; drop --seed)", file=sys.stderr)
            return 2
    else:
        spec = PROFILES[args.profile]
        if args.seed is not None:
            spec = dataclasses.replace(spec, seed=args.seed)
        trace = generate_trace(spec)
    digest = trace_digest(trace)

    if args.emit_trace is not None:
        write_trace(trace, args.emit_trace)
        print(f"trace: {len(trace)} events over {len(trace.scenes)} "
              f"scenes ({trace.spec.profile}, seed {trace.spec.seed})")
        print(f"digest: {digest}")
        print(f"wrote {args.emit_trace}")
        return 0

    # -- topology ------------------------------------------------------------
    process = None
    if args.attach is not None:
        host, _, port_text = args.attach.rpartition(":")
        if not host or not port_text.isdigit():
            print(f"error: --attach expects HOST:PORT, got "
                  f"{args.attach!r}", file=sys.stderr)
            return 2
        host, port = host, int(port_text)
        if args.chaos:
            print("note: --chaos against an attached topology requires "
                  "it to be a supervised `repro route` (kills are "
                  "delivered to pids read off /healthz)")
    else:
        workdir = Path(args.workdir) if args.workdir else Path(
            tempfile.mkdtemp(prefix="repro-loadgen-"))
        workdir.mkdir(parents=True, exist_ok=True)
        topology_args = ("--backends", str(args.backends),
                         "--replication", str(args.replication),
                         "--journal", str(workdir / "journal.jsonl"),
                         "--snapshot-dir", str(workdir / "snapshots"))
        print(f"spawning router topology: {args.backends} backend(s), "
              f"replication {args.replication}, state under {workdir}",
              flush=True)
        process, host, port = spawn_cli_server("route", topology_args,
                                               label="loadgen-route")

    chaos_plan = (ChaosPlan(kills=args.kills, seed=trace.spec.seed,
                            mode="slow" if args.slow else "kill",
                            stall_s=args.stall_s)
                  if args.chaos else None)
    config = DriverConfig(host=host, port=port,
                          time_scale=args.time_scale, chaos=chaos_plan,
                          deadline_ms=args.deadline_ms)

    try:
        result = asyncio.run(replay_trace(trace, config))
    finally:
        if process is not None:
            process.terminate()
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

    chaos_doc = result.chaos.to_doc() if result.chaos is not None else None
    report = build_report(result.accountant, trace_doc=trace.to_doc(),
                          trace_digest=digest,
                          topology=result.topology_doc, chaos=chaos_doc)

    # -- human summary -------------------------------------------------------
    print(f"replayed {len(trace)} events over {len(trace.scenes)} scenes "
          f"in {result.wall_seconds:.1f} s "
          f"(profile {trace.spec.profile}, seed {trace.spec.seed})")
    for name, phase in report["phases"].items():
        print(f"  {name:<9} {phase['requests']:>5} req  "
              f"p50 {phase['p50_ms']} ms  p95 {phase['p95_ms']} ms  "
              f"p99 {phase['p99_ms']} ms  "
              f"errors {phase['errors']} ({phase['error_rate']:.2%})  "
              f"hit rate {phase['cache_hit_rate']}")
    failed = [verdict for verdict in report["slo"] if not verdict["ok"]]
    for verdict in report["slo"]:
        marker = "PASS" if verdict["ok"] else "FAIL"
        detail = ("" if verdict["ok"]
                  else " — " + "; ".join(verdict["failures"]))
        print(f"  SLO {verdict['slo']['name']}: {marker}{detail}")
    exit_code = 0
    if chaos_doc is not None:
        if chaos_doc.get("mode") == "slow":
            hedges = chaos_doc.get("observed_hedges") or {}
            print(f"  chaos(slow): {chaos_doc['stalls']} stall(s), "
                  f"resumed: {chaos_doc.get('resumed')}, "
                  f"hedges {hedges.get('fired')} "
                  f"(won {hedges.get('won')}), "
                  f"deadline_exceeded "
                  f"{chaos_doc.get('observed_deadline_exceeded')}, "
                  f"slow timeouts "
                  f"{chaos_doc.get('observed_slow_timeouts')}, "
                  f"ejections {chaos_doc.get('observed_ejections')}")
        else:
            print(f"  chaos: {chaos_doc['kills']} kill(s), "
                  f"{chaos_doc['observed_restarts']} respawn(s), "
                  f"{chaos_doc.get('observed_failovers')} failover(s), "
                  f"{chaos_doc.get('degraded_served')} degraded, "
                  f"reregistration storm bounded: "
                  f"{chaos_doc['reregistration_storm_bounded']}")
        if not chaos_doc.get("recovered"):
            fault = ("stall was never resumed"
                     if chaos_doc.get("mode") == "slow"
                     else "kill was never recovered (no respawn observed)")
            print(f"FAIL: chaos {fault}", file=sys.stderr)
            exit_code = 1
        if chaos_doc.get("reregistration_storm_bounded") is False:
            print("FAIL: re-registration storm exceeded the journaled "
                  "scene population per kill", file=sys.stderr)
            exit_code = 1
    if failed:
        print(f"FAIL: {len(failed)} SLO(s) violated", file=sys.stderr)
        exit_code = 1

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        committed = load_report(args.check)
        findings = check_regression(committed, report,
                                    args.max_regression)
        for finding in findings:
            print(f"FAIL: {finding}", file=sys.stderr)
        if findings:
            exit_code = 1
        else:
            print(f"regression check passed (within "
                  f"{args.max_regression:.0%} of the committed summed "
                  f"p95)")
    return exit_code


def _cmd_warm(args: argparse.Namespace) -> int:
    import time

    from repro.engine import CompletionEngine
    from repro.lang.loader import load_environment_file

    variants = tuple(part.strip() for part in args.variants.split(",")
                     if part.strip())
    loaded = load_environment_file(args.scene)
    goals = _parse_goals(args.goals) or [loaded.goal]
    if any(goal is None for goal in goals):
        print("error: the scene has no goal; pass --goals TYPES",
              file=sys.stderr)
        return 2

    engine = CompletionEngine()
    prepared = engine.prepare(loaded.environment, loaded.subtypes,
                              goal=loaded.goal, name=args.scene)

    cold_start = time.perf_counter()
    computed = engine.warm(prepared, goals, variants=variants, n=args.n)
    cold_seconds = time.perf_counter() - cold_start

    warm_start = time.perf_counter()
    hits = 0
    for goal in goals:
        for variant in variants:
            served = engine.complete(prepared, goal, variant=variant,
                                     n=args.n)
            hits += 1 if served.cache_hit else 0
    warm_seconds = time.perf_counter() - warm_start

    entries = len(goals) * len(variants)
    print(f"warmed {computed} entries "
          f"({len(goals)} goal(s) x {len(variants)} variant(s)) "
          f"in {cold_seconds * 1000:.1f} ms")
    print(f"re-served all {entries} from cache: {hits}/{entries} hits "
          f"in {warm_seconds * 1000:.1f} ms")
    if warm_seconds > 0 and cold_seconds > 0:
        print(f"speedup: {cold_seconds / warm_seconds:.0f}x")
    print(f"cache: {engine.cache_stats.as_text()}")
    return 0 if hits == entries else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_table, summarize
    from repro.bench.runner import run_suite

    numbers = None
    if args.rows:
        numbers = [int(part) for part in args.rows.split(",") if part.strip()]
    variants = tuple(part.strip() for part in args.variants.split(",")
                     if part.strip())
    results = run_suite(numbers=numbers, variants=variants, n=args.n,
                        timing_repeats=args.repeats)
    print(format_table(results))
    if set(variants) == {"no_weights", "no_corpus", "full"}:
        print()
        print(summarize(results).as_text())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.server.client import AsyncCompletionClient

    async def _fetch() -> dict:
        async with AsyncCompletionClient(args.host, args.port,
                                         timeout=10.0) as client:
            return await client.stats()

    try:
        payload = asyncio.run(_fetch())
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    server = payload.get("server", {})
    engine = payload.get("engine", {})
    core = payload.get("core", {})
    executor = payload.get("executor", {})
    scenes = payload.get("scenes", {})
    print(f"server at http://{args.host}:{args.port}")
    latency = server.get("latency", {})
    for window in ("complete", "warm", "synthesis"):
        row = latency.get(window) or {}
        print(f"  {window:<9} count={row.get('count', 0):<7} "
              f"p50={row.get('p50_ms')} ms  p95={row.get('p95_ms')} ms")
    print(f"  completions={server.get('completions', 0)} "
          f"cache_hits={server.get('cache_hits', 0)} "
          f"coalesced={server.get('coalesced', 0)} "
          f"rejected={server.get('rejected_overload', 0)}")
    print(f"executor: threads={executor.get('threads')} "
          f"workers={executor.get('workers')} "
          f"process_pool={executor.get('process_pool')}")
    result_stats = engine.get("result_stats", {})
    print(f"engine: results {engine.get('result_entries')}/"
          f"{engine.get('result_capacity')} "
          f"(hit rate {result_stats.get('hit_rate')}), "
          f"{engine.get('prepared_scenes')} prepared scenes")
    print(f"scenes: {scenes.get('count')}/{scenes.get('limit')} registered, "
          f"{scenes.get('evictions')} evictions, "
          f"{scenes.get('releases')} releases")
    ranking = payload.get("ranking")
    if ranking:
        weighers = ", ".join(ranking.get("weighers") or []) or "(empty chain)"
        print(f"ranking: {weighers}")
        print(f"  reranks={ranking.get('reranks')} "
              f"reordered={ranking.get('reordered')}")
        for weigher, moved in sorted(
                (ranking.get("adjustments") or {}).items()):
            print(f"  weigher {weigher}: adjusted={moved}")
    router = payload.get("router")
    if router:
        journal = router.get("journal", {})
        print(f"router: {router.get('backends')} backends "
              f"({router.get('healthy')} healthy), "
              f"replication {router.get('replication')}, "
              f"journal {journal.get('scenes')} scenes"
              f"{' (durable)' if journal.get('durable') else ''}, "
              f"replayed {router.get('replayed')}, "
              f"reregistrations {router.get('reregistrations')}, "
              f"restarts {router.get('restarts')}")
        budget = router.get("retry_budget") or {}
        print(f"  resilience: failovers={router.get('failovers')} "
              f"degraded={router.get('degraded_served')} "
              f"drains={router.get('drains')} "
              f"lkg_entries={router.get('lkg_entries')} "
              f"retry_budget {budget.get('tokens')}/{budget.get('burst')} "
              f"tokens (granted={budget.get('granted')} "
              f"denied={budget.get('denied')})")
        hedges = router.get("hedges") or {}
        print(f"  gray: deadline_exceeded="
              f"{router.get('deadline_exceeded')} "
              f"slow_timeouts={router.get('slow_timeouts')} "
              f"hedges={hedges.get('fired')} (won={hedges.get('won')}) "
              f"ejections={router.get('ejections')} "
              f"ejected={router.get('ejected')} "
              f"rebalances={router.get('rebalances')}")
        for backend_id, breaker in sorted(
                (router.get("breakers") or {}).items()):
            window = (router.get("backend_latency") or {}).get(
                backend_id) or {}
            print(f"  breaker {backend_id}: {breaker.get('state')} "
                  f"(consecutive_failures="
                  f"{breaker.get('consecutive_failures')}, "
                  f"opened_total={breaker.get('opened_total')}) "
                  f"latency p95={window.get('p95_ms')} ms "
                  f"ewma={window.get('ewma_ms')} ms")
    interned = core.get("interned_types", {})
    print(f"interned types: size={interned.get('size')} "
          f"limit={interned.get('limit')} "
          f"evictions={interned.get('evictions')} "
          f"ids_assigned={interned.get('type_ids_assigned')}")
    simple = core.get("simple_types", {})
    print(f"simple-type ids: size={simple.get('size')} "
          f"ids_assigned={simple.get('ids_assigned')}")
    arena = core.get("env_arena", {})
    print(f"env arena: live={arena.get('live_arenas')} "
          f"envs={arena.get('env_count')} "
          f"transition_hits={arena.get('transition_memo_hits')} "
          f"misses={arena.get('transition_memo_misses')} "
          f"merges={arena.get('index_merges')} "
          f"retired={arena.get('retired_arenas')}")
    gc_stats = payload.get("gc", {})
    if gc_stats:
        print(f"gc: tuned={gc_stats.get('tuned')} "
              f"thresholds={gc_stats.get('thresholds')} "
              f"frozen={gc_stats.get('frozen')} "
              f"collections={gc_stats.get('collections')}")
    return 0


def _cmd_corpus_stats() -> int:
    from repro.corpus.projects import CORPUS_PROJECTS
    from repro.corpus.synthetic import default_frequencies

    table = default_frequencies()
    summary = table.summary()
    print(f"corpus projects: {len(CORPUS_PROJECTS)} (Table 3) "
          "+ Scala standard library")
    print(f"{summary}")
    print("ten most used symbols:")
    for symbol, count in table.most_common(10):
        print(f"  {count:>6}  {symbol}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "synthesize":
            return _cmd_synthesize(args)
        if args.command == "batch":
            return _cmd_batch(args)
        if args.command == "edit-session":
            return _cmd_edit_session(args)
        if args.command == "warm":
            return _cmd_warm(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "route":
            return _cmd_route(args)
        if args.command == "loadgen":
            return _cmd_loadgen(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "corpus-stats":
            return _cmd_corpus_stats()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable: argparse enforces the command set")


if __name__ == "__main__":
    sys.exit(main())
