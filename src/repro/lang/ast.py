"""AST for declaration files.

A parsed environment file is an :class:`EnvironmentSpec`: declarations with
their natures and attributes, subtype edges, and an optional goal type.  The
loader (`repro.lang.loader`) turns a spec into the runtime objects
(:class:`~repro.core.environment.Environment`,
:class:`~repro.core.subtyping.SubtypeGraph`, goal
:class:`~repro.core.types.Type`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.environment import DeclKind, RenderStyle
from repro.core.types import Type

#: statement keyword -> declaration nature
KIND_KEYWORDS: dict[str, DeclKind] = {
    "lambda": DeclKind.LAMBDA,
    "local": DeclKind.LOCAL,
    "coercion": DeclKind.COERCION,
    "class": DeclKind.CLASS_MEMBER,
    "package": DeclKind.PACKAGE_MEMBER,
    "literal": DeclKind.LITERAL,
    "imported": DeclKind.IMPORTED,
}

#: attribute value -> render style
STYLE_NAMES: dict[str, RenderStyle] = {
    style.value: style for style in RenderStyle
}


@dataclass(frozen=True)
class DeclarationSpec:
    """One parsed declaration statement."""

    name: str
    type: Type
    kind: DeclKind
    frequency: int = 0
    style: Optional[RenderStyle] = None
    display: str = ""
    line: int = 0


@dataclass(frozen=True)
class SubtypeSpec:
    """One parsed ``subtype Sub <: Super`` statement."""

    subtype: str
    supertype: str
    line: int = 0


@dataclass(frozen=True)
class GoalSpec:
    """The parsed ``goal`` statement."""

    type: Type
    line: int = 0


@dataclass
class EnvironmentSpec:
    """A whole parsed environment file."""

    declarations: list[DeclarationSpec] = field(default_factory=list)
    subtypes: list[SubtypeSpec] = field(default_factory=list)
    goal: Optional[GoalSpec] = None
    base_types: list[str] = field(default_factory=list)

    def declaration_names(self) -> list[str]:
        return [decl.name for decl in self.declarations]
