"""Declaration-language frontend.

A small textual language for type environments, so benchmarks and examples
can be written as readable ``.ins`` files instead of Python construction
code, plus the pretty printer that renders synthesized lambda terms as
Scala-like snippets (``new FileInputStream(name)``, ``tree => p(tree)``).
"""

from repro.lang.ast import DeclarationSpec, EnvironmentSpec, GoalSpec
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.loader import load_environment_file, load_environment_text
from repro.lang.parser import parse_environment, parse_type
from repro.lang.printer import render_snippet, render_type
from repro.lang.serializer import save_scene, serialize_environment

__all__ = [
    "DeclarationSpec", "EnvironmentSpec", "GoalSpec",
    "Token", "TokenKind", "tokenize",
    "parse_environment", "parse_type",
    "load_environment_file", "load_environment_text",
    "render_snippet", "render_type",
    "save_scene", "serialize_environment",
]
