"""Serialising environments back to the declaration language.

The inverse of :mod:`repro.lang.loader`: turn a runtime
:class:`~repro.core.environment.Environment` (plus subtype graph and goal)
into ``.ins`` text that parses back to an equivalent scene.  Useful for
persisting generated benchmark scenes and for debugging — any environment
the library builds programmatically can be dumped, inspected and replayed
through the CLI.
"""

from __future__ import annotations

from typing import Optional

from repro.core.environment import (Declaration, DeclKind, Environment,
                                    RenderStyle)
from repro.core.subtyping import SubtypeGraph, is_coercion_name
from repro.core.types import Type, format_type

_KIND_KEYWORD = {
    DeclKind.LAMBDA: "lambda",
    DeclKind.LOCAL: "local",
    DeclKind.COERCION: "coercion",
    DeclKind.CLASS_MEMBER: "class",
    DeclKind.PACKAGE_MEMBER: "package",
    DeclKind.LITERAL: "literal",
    DeclKind.IMPORTED: "imported",
}


def _declaration_line(declaration: Declaration) -> str:
    keyword = _KIND_KEYWORD[declaration.kind]
    name = declaration.name
    if declaration.kind is DeclKind.LITERAL and name.startswith('"'):
        pass  # string-literal names keep their quotes; the lexer re-reads them
    parts = [f"{keyword} {name} : {format_type(declaration.type)}"]
    if declaration.frequency:
        parts.append(f"[freq={declaration.frequency}]")
    render = declaration.render
    if render is not None and render.style is not RenderStyle.VALUE:
        parts.append(f"[style={render.style.value}]")
    if render is not None and render.display and \
            render.display != declaration.name:
        parts.append(f"[display={render.display}]")
    return " ".join(parts)


def serialize_environment(environment: Environment,
                          subtypes: Optional[SubtypeGraph] = None,
                          goal: Optional[Type] = None,
                          header: str = "") -> str:
    """Render a scene as declaration-language text.

    Synthesizer-internal declarations (generated coercions, lambda binders)
    are skipped: coercions are reconstructed from the subtype graph on
    reload, and binders never belong to a scene.
    """
    lines: list[str] = []
    if header:
        for row in header.splitlines():
            lines.append(f"# {row}".rstrip())
        lines.append("")

    if subtypes is not None and len(subtypes):
        for sub, sup in subtypes.edges():
            lines.append(f"subtype {sub} <: {sup}")
        lines.append("")

    for declaration in environment.declarations():
        if declaration.kind in (DeclKind.LAMBDA, DeclKind.COERCION):
            continue
        if is_coercion_name(declaration.name):
            continue
        lines.append(_declaration_line(declaration))

    if goal is not None:
        lines.append("")
        lines.append(f"goal {format_type(goal)}")
    lines.append("")
    return "\n".join(lines)


def save_scene(path, environment: Environment,
               subtypes: Optional[SubtypeGraph] = None,
               goal: Optional[Type] = None, header: str = "") -> None:
    """Serialise and write a scene to *path*."""
    from pathlib import Path

    text = serialize_environment(environment, subtypes, goal, header)
    Path(path).write_text(text, encoding="utf-8")
