"""Loading environment files into runtime objects.

Turns a parsed :class:`~repro.lang.ast.EnvironmentSpec` into the triple
``(Environment, SubtypeGraph, goal Type)`` the synthesizer consumes.  Render
styles default sensibly from the declaration kind when omitted (literals
render verbatim, everything else as a value).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.core.environment import (Declaration, DeclKind, Environment,
                                    RenderSpec, RenderStyle)
from repro.core.errors import TypeSyntaxError
from repro.core.subtyping import SubtypeGraph
from repro.core.types import Type
from repro.lang.ast import DeclarationSpec, EnvironmentSpec
from repro.lang.parser import parse_environment


@dataclass
class LoadedEnvironment:
    """The runtime view of one environment file."""

    environment: Environment
    subtypes: SubtypeGraph
    goal: Optional[Type]
    spec: EnvironmentSpec


def _render_spec(decl: DeclarationSpec) -> RenderSpec:
    if decl.style is not None:
        if decl.style is RenderStyle.LITERAL:
            # Same display default as the style-less literal branch below,
            # so serialize -> reload is an exact fixed point: the
            # serializer omits ``[display=...]`` when display equals the
            # name, and reloading must reconstruct the identical spec
            # (scene fingerprints — and therefore result-cache keys and
            # content-derived scene ids — depend on it).
            return RenderSpec(decl.style, decl.display or decl.name)
        return RenderSpec(decl.style, decl.display)
    if decl.kind is DeclKind.LITERAL:
        return RenderSpec(RenderStyle.LITERAL, decl.display or decl.name)
    return RenderSpec(RenderStyle.VALUE, decl.display)


def load_environment_text(text: str) -> LoadedEnvironment:
    """Parse and load an environment from source text."""
    spec = parse_environment(text)

    declarations = [
        Declaration(name=decl.name, type=decl.type, kind=decl.kind,
                    frequency=decl.frequency, render=_render_spec(decl))
        for decl in spec.declarations
    ]
    environment = Environment(declarations)

    graph = SubtypeGraph()
    for edge in spec.subtypes:
        graph.add_edge(edge.subtype, edge.supertype)

    goal = spec.goal.type if spec.goal is not None else None
    return LoadedEnvironment(environment, graph, goal, spec)


def load_declaration_line(text: str) -> Declaration:
    """Parse one declaration line into a runtime :class:`Declaration`.

    The scene-delta path (``repro.incremental``) adds declarations from
    wire payloads one line at a time; routing them through the same parser
    and render-spec defaults as :func:`load_environment_text` guarantees a
    delta-added declaration is byte-identical to the same line loaded as
    part of a full scene — the invariant the delta parity property rests
    on.  Raises :class:`~repro.core.errors.TypeSyntaxError`-family errors
    on anything that is not exactly one declaration.
    """
    spec = parse_environment(text)
    if len(spec.declarations) != 1 or spec.subtypes or spec.goal is not None:
        raise TypeSyntaxError(
            f"expected exactly one declaration line, got "
            f"{len(spec.declarations)} declarations, "
            f"{len(spec.subtypes)} subtype edges and "
            f"{'a' if spec.goal is not None else 'no'} goal in {text!r}")
    decl = spec.declarations[0]
    return Declaration(name=decl.name, type=decl.type, kind=decl.kind,
                       frequency=decl.frequency, render=_render_spec(decl))


def load_environment_file(path: str | Path) -> LoadedEnvironment:
    """Parse and load an environment from a ``.ins`` file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise TypeSyntaxError(f"cannot read {path}: {exc}") from exc
    return load_environment_text(text)
