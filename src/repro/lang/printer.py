"""Rendering synthesized terms as Scala-like code snippets.

The synthesizer produces lambda terms whose heads are declaration names like
``java.io.FileInputStream.new`` or ``Container.getLayout``.  The renderer
consults each head declaration's :class:`~repro.core.environment.RenderSpec`
to print what the user would actually insert:

=================  ===========================================
style              rendering
=================  ===========================================
``constructor``    ``new FileInputStream(name)``
``method``         ``panel.getLayout()``   (first arg = receiver)
``field``          ``point.x``
``static_method``  ``System.currentTimeMillis()``
``static_field``   ``System.out``
``function``       ``p(var1)``
``value``          ``body``
``literal``        verbatim display text
``coercion``       transparent (renders its argument)
=================  ===========================================

Lambda binders render as Scala closures: ``var1 => p(var1)`` for one binder,
``(a, b) => ...`` for several.
"""

from __future__ import annotations

from repro.core.environment import (Declaration, Environment, RenderSpec,
                                    RenderStyle)
from repro.core.terms import LNFTerm
from repro.core.types import Type, format_type


def render_type(tpe: Type) -> str:
    """Render a type using Scala's ``=>`` arrow."""
    return format_type(tpe).replace("->", "=>")


def _simple_name(qualified: str) -> str:
    """Drop package qualifiers and trailing ``.new`` member markers."""
    name = qualified
    if name.endswith(".new"):
        name = name[: -len(".new")]
    return name.rsplit(".", 1)[-1]


def render_snippet(term: LNFTerm, environment: Environment) -> str:
    """Render an LNF term as a Scala-like snippet."""
    body = _render_application(term, environment)
    if not term.binders:
        return body
    names = [binder.name for binder in term.binders]
    if len(names) == 1:
        return f"{names[0]} => {body}"
    return "(" + ", ".join(names) + ") => " + body


def _receiver(term: LNFTerm, rendered: str) -> str:
    """Parenthesise a receiver only when it renders as a bare lambda."""
    if term.binders:
        return f"({rendered})"
    return rendered


def _render_application(term: LNFTerm, environment: Environment) -> str:
    declaration = environment.lookup(term.head)
    spec = declaration.render if declaration is not None else None
    style = spec.style if spec is not None else RenderStyle.VALUE
    display = spec.display_or(_simple_name(term.head)) if spec is not None \
        else term.head

    arguments = [render_snippet(argument, environment)
                 for argument in term.arguments]

    if style is RenderStyle.COERCION:
        # Coercions are normally erased before rendering; be transparent if
        # one survives (e.g. when rendering raw terms for debugging).
        return arguments[0] if arguments else display

    if style is RenderStyle.LITERAL:
        return display

    if style is RenderStyle.CONSTRUCTOR:
        return f"new {display}(" + ", ".join(arguments) + ")"

    if style is RenderStyle.METHOD:
        if not arguments:
            return f"{display}()"
        receiver = _receiver(term.arguments[0], arguments[0])
        return f"{receiver}.{display}(" + ", ".join(arguments[1:]) + ")"

    if style is RenderStyle.FIELD:
        if not arguments:
            return display
        receiver = _receiver(term.arguments[0], arguments[0])
        return f"{receiver}.{display}"

    if style in (RenderStyle.STATIC_METHOD, RenderStyle.FUNCTION):
        return f"{display}(" + ", ".join(arguments) + ")"

    if style is RenderStyle.STATIC_FIELD:
        return display

    # VALUE (locals, parameters, lambda binders).
    if arguments:
        return f"{display}(" + ", ".join(arguments) + ")"
    return display


def render_ranked(snippets, limit: int = 10) -> str:
    """Format a ranked suggestion list the way the InSynth popup shows it."""
    lines = []
    for snippet in snippets[:limit]:
        lines.append(f"{snippet.rank:>3}. {snippet.code}")
    return "\n".join(lines)
