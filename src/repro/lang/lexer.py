"""Lexer for the declaration language and type expressions.

The token set is deliberately small:

* ``IDENT`` — Java/Scala-ish qualified identifiers (``java.io.File``,
  ``FileInputStream.new``, ``scala.Int``);
* ``STRING`` — double-quoted literals used for literal declarations;
* ``NUMBER`` — integers (attribute values such as frequencies);
* punctuation — ``->`` / ``=>`` (both accepted as the arrow), ``(``, ``)``,
  ``[``, ``]``, ``:``, ``=``, ``,``, ``<:`` for subtype edges;
* ``NEWLINE`` — statements are line-oriented; ``#`` starts a comment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import TypeSyntaxError


class TokenKind(enum.Enum):
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    ARROW = "->"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COLON = ":"
    EQUALS = "="
    COMMA = ","
    SUBTYPE = "<:"
    NEWLINE = "newline"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.line}:{self.column}"


_IDENT_START = set("abcdefghijklmnopqrstuvwxyz"
                   "ABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | set("0123456789.")


def tokenize(text: str) -> list[Token]:
    """Tokenise *text*; raises :class:`TypeSyntaxError` on bad input."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    line, column = 1, 1
    index = 0
    length = len(text)

    def error(message: str) -> TypeSyntaxError:
        return TypeSyntaxError(message, line, column)

    while index < length:
        char = text[index]

        if char == "#":
            while index < length and text[index] != "\n":
                index += 1
            continue
        if char == "\n":
            yield Token(TokenKind.NEWLINE, "\n", line, column)
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "\\" and index + 1 < length and text[index + 1] == "\n":
            # Backslash-newline: line continuation inside a statement.
            index += 2
            line += 1
            column = 1
            continue

        if char == "-" and text[index:index + 2] == "->":
            yield Token(TokenKind.ARROW, "->", line, column)
            index += 2
            column += 2
            continue
        if char == "=" and text[index:index + 2] == "=>":
            yield Token(TokenKind.ARROW, "=>", line, column)
            index += 2
            column += 2
            continue
        if char == "<" and text[index:index + 2] == "<:":
            yield Token(TokenKind.SUBTYPE, "<:", line, column)
            index += 2
            column += 2
            continue

        simple = {
            "(": TokenKind.LPAREN, ")": TokenKind.RPAREN,
            "[": TokenKind.LBRACKET, "]": TokenKind.RBRACKET,
            ":": TokenKind.COLON, "=": TokenKind.EQUALS,
            ",": TokenKind.COMMA,
        }
        if char in simple:
            yield Token(simple[char], char, line, column)
            index += 1
            column += 1
            continue

        if char == '"':
            start_column = column
            index += 1
            column += 1
            chars: list[str] = []
            while index < length and text[index] != '"':
                if text[index] == "\n":
                    raise error("unterminated string literal")
                if text[index] == "\\" and index + 1 < length:
                    index += 1
                    column += 1
                chars.append(text[index])
                index += 1
                column += 1
            if index >= length:
                raise error("unterminated string literal")
            index += 1  # closing quote
            column += 1
            yield Token(TokenKind.STRING, "".join(chars), line, start_column)
            continue

        if char.isdigit():
            start_column = column
            start = index
            while index < length and text[index].isdigit():
                index += 1
                column += 1
            yield Token(TokenKind.NUMBER, text[start:index], line, start_column)
            continue

        if char in _IDENT_START:
            start_column = column
            start = index
            while index < length and text[index] in _IDENT_CONT:
                index += 1
                column += 1
            ident = text[start:index].rstrip(".")
            # A trailing dot is punctuation misuse, not part of the name.
            if len(ident) != index - start:
                raise error(f"identifier may not end with '.': {text[start:index]!r}")
            yield Token(TokenKind.IDENT, ident, line, start_column)
            continue

        raise error(f"unexpected character {char!r}")

    yield Token(TokenKind.EOF, "", line, column)
