"""Recursive-descent parser for type expressions and environment files.

Grammar (line-oriented; ``#`` comments; blank lines ignored)::

    file      := { statement }
    statement := "type" IDENT+                          # declare base types
               | "subtype" IDENT "<:" IDENT             # subtype edge
               | KIND name ":" type attribute*          # declaration
               | "goal" type                            # desired type
    KIND      := "lambda" | "local" | "coercion" | "class"
               | "package" | "literal" | "imported"
    name      := IDENT | STRING                         # strings for literals
    type      := atom { "->" type }                     # right-associative
    atom      := IDENT | "(" type ")"
    attribute := "[" IDENT "=" (NUMBER | IDENT | STRING) "]"

Recognised attributes: ``freq`` (corpus frequency, integer), ``style``
(render style name), ``display`` (rendered head text).
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import TypeSyntaxError
from repro.core.types import Arrow, BaseType, Type
from repro.lang.ast import (DeclarationSpec, EnvironmentSpec, GoalSpec,
                            KIND_KEYWORDS, STYLE_NAMES, SubtypeSpec)
from repro.lang.lexer import Token, TokenKind, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._position = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self) -> Token:
        return self._tokens[self._position]

    def advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind is not TokenKind.EOF:
            self._position += 1
        return token

    def expect(self, kind: TokenKind) -> Token:
        token = self.peek()
        if token.kind is not kind:
            raise TypeSyntaxError(
                f"expected {kind.value!r}, found {token.kind.value!r} "
                f"({token.text!r})", token.line, token.column)
        return self.advance()

    def skip_newlines(self) -> None:
        while self.peek().kind is TokenKind.NEWLINE:
            self.advance()

    def end_statement(self) -> None:
        token = self.peek()
        if token.kind in (TokenKind.NEWLINE, TokenKind.EOF):
            self.skip_newlines()
            return
        raise TypeSyntaxError(
            f"unexpected {token.text!r} at end of statement",
            token.line, token.column)

    # -- types ----------------------------------------------------------------

    def parse_type(self) -> Type:
        left = self.parse_type_atom()
        if self.peek().kind is TokenKind.ARROW:
            self.advance()
            return Arrow(left, self.parse_type())
        return left

    def parse_type_atom(self) -> Type:
        token = self.peek()
        if token.kind is TokenKind.IDENT:
            self.advance()
            return BaseType(token.text)
        if token.kind is TokenKind.LPAREN:
            self.advance()
            inner = self.parse_type()
            self.expect(TokenKind.RPAREN)
            return inner
        raise TypeSyntaxError(
            f"expected a type, found {token.text!r}", token.line, token.column)

    # -- statements -----------------------------------------------------------

    def parse_file(self) -> EnvironmentSpec:
        spec = EnvironmentSpec()
        self.skip_newlines()
        while self.peek().kind is not TokenKind.EOF:
            self.parse_statement(spec)
            self.skip_newlines()
        return spec

    def parse_statement(self, spec: EnvironmentSpec) -> None:
        token = self.peek()
        if token.kind is not TokenKind.IDENT:
            raise TypeSyntaxError(
                f"expected a statement keyword, found {token.text!r}",
                token.line, token.column)
        keyword = token.text

        if keyword == "type":
            self.advance()
            names = []
            while self.peek().kind is TokenKind.IDENT:
                names.append(self.advance().text)
            if not names:
                raise TypeSyntaxError("'type' requires at least one name",
                                      token.line, token.column)
            spec.base_types.extend(names)
            self.end_statement()
            return

        if keyword == "subtype":
            self.advance()
            subtype = self.expect(TokenKind.IDENT).text
            self.expect(TokenKind.SUBTYPE)
            supertype = self.expect(TokenKind.IDENT).text
            spec.subtypes.append(SubtypeSpec(subtype, supertype, token.line))
            self.end_statement()
            return

        if keyword == "goal":
            self.advance()
            goal_type = self.parse_type()
            if spec.goal is not None:
                raise TypeSyntaxError("duplicate 'goal' statement",
                                      token.line, token.column)
            spec.goal = GoalSpec(goal_type, token.line)
            self.end_statement()
            return

        kind = KIND_KEYWORDS.get(keyword)
        if kind is None:
            raise TypeSyntaxError(
                f"unknown statement keyword {keyword!r}",
                token.line, token.column)
        self.advance()
        spec.declarations.append(self.parse_declaration(kind, token))
        self.end_statement()

    def parse_declaration(self, kind, keyword_token: Token) -> DeclarationSpec:
        name_token = self.peek()
        if name_token.kind is TokenKind.STRING:
            name = f'"{name_token.text}"'
            self.advance()
        else:
            name = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.COLON)
        declared_type = self.parse_type()

        frequency = 0
        style = None
        display = ""
        while self.peek().kind is TokenKind.LBRACKET:
            self.advance()
            attr_token = self.expect(TokenKind.IDENT)
            self.expect(TokenKind.EQUALS)
            value = self.peek()
            if value.kind not in (TokenKind.NUMBER, TokenKind.IDENT,
                                  TokenKind.STRING):
                raise TypeSyntaxError(
                    f"bad attribute value {value.text!r}",
                    value.line, value.column)
            self.advance()
            self.expect(TokenKind.RBRACKET)
            if attr_token.text == "freq":
                if value.kind is not TokenKind.NUMBER:
                    raise TypeSyntaxError("freq expects an integer",
                                          value.line, value.column)
                frequency = int(value.text)
            elif attr_token.text == "style":
                style = STYLE_NAMES.get(value.text)
                if style is None:
                    raise TypeSyntaxError(
                        f"unknown render style {value.text!r}",
                        value.line, value.column)
            elif attr_token.text == "display":
                display = value.text
            else:
                raise TypeSyntaxError(
                    f"unknown attribute {attr_token.text!r}",
                    attr_token.line, attr_token.column)

        return DeclarationSpec(name=name, type=declared_type, kind=kind,
                               frequency=frequency, style=style,
                               display=display, line=keyword_token.line)


def parse_type(text: str) -> Type:
    """Parse a single type expression such as ``"(A -> B) -> C"``."""
    parser = _Parser(tokenize(text))
    parser.skip_newlines()
    result = parser.parse_type()
    parser.skip_newlines()
    token = parser.peek()
    if token.kind is not TokenKind.EOF:
        raise TypeSyntaxError(f"trailing input {token.text!r}",
                              token.line, token.column)
    return result


def parse_environment(text: str) -> EnvironmentSpec:
    """Parse a whole environment file."""
    return _Parser(tokenize(text)).parse_file()
