"""Declaration-level deltas over prepared scenes.

One edit in the editor is one :class:`DeltaOp`: add a declaration (a
single ``.ins`` declaration line, parsed through the exact loader path a
full scene goes through) or remove one by name.  :func:`apply_scene_delta`
applies a batch of ops to a :class:`~repro.engine.engine.PreparedScene`
and produces the re-prepared scene for the resulting environment.

The re-prepare is incremental where it matters and content-addressed
where it must be:

* the new flat base environment is rebuilt in final-text declaration
  order, so its fingerprint — and therefore every result-cache
  :class:`~repro.engine.keys.QueryKey` and content-derived scene id —
  is byte-identical to a fresh load of the serialized final text; a
  delta invalidates exactly the queries whose environment content
  changed, and an edit script that returns to an earlier state re-hits
  that state's warm cache entries;
* the donor scene's :class:`~repro.core.space.EnvArena` is shared and
  the new root environment is interned with the old root as parent, so
  the MATCH index merges only the delta instead of re-sorting thousands
  of members (see
  :meth:`~repro.core.environment.Environment.adopt_prepared_state`);
* per-policy weight memos transfer minus exactly the sigma images of
  the touched declarations.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from repro.core.environment import Declaration, Environment
from repro.core.errors import EngineError, ReproError
from repro.core.subtyping import environment_with_subtyping
from repro.engine.engine import CompletionEngine, PreparedScene

#: The wire op kinds (also the journal vocabulary).
OP_KINDS = ("add", "remove")


class DeltaError(EngineError):
    """A delta op could not be parsed or applied to the scene."""


@dataclass(frozen=True)
class DeltaOp:
    """One declaration-level edit: ``add`` a parsed line or ``remove`` a name.

    ``line`` keeps the original declaration source for adds — it is what
    goes on the wire and into router journals, so a replayed edit parses
    through the same loader path and yields a byte-identical declaration.
    """

    op: str
    name: str
    declaration: Optional[Declaration] = None
    line: Optional[str] = None

    @staticmethod
    def add(line: str) -> "DeltaOp":
        """An add-op from one ``.ins`` declaration line."""
        from repro.lang.loader import load_declaration_line

        try:
            declaration = load_declaration_line(line)
        except ReproError as exc:
            raise DeltaError(
                f"add op has an unparsable declaration line {line!r}: "
                f"{exc}") from exc
        return DeltaOp(op="add", name=declaration.name,
                       declaration=declaration, line=line.strip())

    @staticmethod
    def remove(name: str) -> "DeltaOp":
        return DeltaOp(op="remove", name=name)

    @staticmethod
    def from_payload(payload: Any) -> "DeltaOp":
        if not isinstance(payload, dict):
            raise DeltaError(f"delta op must be an object, got {payload!r}")
        op = payload.get("op")
        if op not in OP_KINDS:
            raise DeltaError(
                f"delta 'op' must be one of {OP_KINDS}, got {op!r}")
        if op == "add":
            line = payload.get("decl")
            if not isinstance(line, str) or not line.strip():
                raise DeltaError(
                    "add op requires 'decl' (one declaration line)")
            return DeltaOp.add(line)
        name = payload.get("name")
        if not isinstance(name, str) or not name.strip():
            raise DeltaError("remove op requires 'name'")
        return DeltaOp.remove(name)

    def to_payload(self) -> dict:
        if self.op == "add":
            return {"op": "add", "decl": self.line}
        return {"op": "remove", "name": self.name}


def parse_delta_ops(payloads: Iterable[Any]) -> list[DeltaOp]:
    """Validate a wire list of delta-op payloads."""
    return [DeltaOp.from_payload(payload) for payload in payloads]


@dataclass
class DeltaOutcome:
    """What one :func:`apply_scene_delta` call did."""

    prepared: PreparedScene
    added: tuple[str, ...]
    removed: tuple[str, ...]
    #: True when the resulting content was already in the engine's scene
    #: table (an edit script returned to a previously prepared state) —
    #: all warm state and cached results reattached with zero re-prepare.
    reused: bool
    #: Succinct types whose weight memos the delta invalidated.
    dirty_types: int

    @property
    def declarations(self) -> int:
        return len(self.prepared.base_environment)


def _coerced(base: Environment, prepared: PreparedScene) -> Environment:
    """The coercion-extended environment for *base*, reusing the donor
    scene's coercion declaration objects.

    ``environment_with_subtyping`` would rebuild equal-but-distinct
    coercion declarations; reusing the donor's instances keeps their
    id()-keyed weight-memo entries transplantable.  Falls back to the
    generic path for hand-built scenes whose extended environment is not
    the usual base-plus-coercions chain.
    """
    donor = prepared.environment
    if donor is prepared.base_environment:
        return environment_with_subtyping(base, prepared.subtypes)
    return base.extended(donor._declarations)


def apply_scene_delta(engine: CompletionEngine, prepared: PreparedScene,
                      ops: Sequence[DeltaOp],
                      name: Optional[str] = None) -> DeltaOutcome:
    """Apply *ops* to *prepared* and return the re-prepared scene.

    The input scene is untouched (environments are immutable; the engine
    keeps serving it) — callers swap to ``outcome.prepared``.  Raises
    :class:`DeltaError` on a duplicate add or an unknown remove; a failed
    batch applies nothing.
    """
    if not ops:
        raise DeltaError("empty delta: pass at least one op")
    base = prepared.base_environment
    # Flat bases (every scene that came through the loader or a prior
    # delta) keep their Select index across the edit: groups are patched
    # per-op instead of regrouping thousands of declarations.  A parented
    # base falls back to the plain constructor.
    flat = base._parent is None
    ordered: dict[str, Declaration] = (
        dict(base._by_name) if flat
        else {decl.name: decl for decl in base.declarations()})
    groups: dict = dict(base._by_succinct) if flat else {}
    dirty: set = set()
    added: list[str] = []
    removed: list[str] = []
    for op in ops:
        if op.op == "add":
            declaration = op.declaration
            if declaration is None:
                raise DeltaError(f"add op for {op.name!r} carries no "
                                 f"declaration; build it via DeltaOp.add")
            if declaration.name in ordered:
                raise DeltaError(
                    f"cannot add {declaration.name!r}: already declared")
            ordered[declaration.name] = declaration
            stype = declaration.succinct_type
            # Appending matches declaration-order grouping: the add lands
            # at the end of the scene text, so it is last in its group.
            groups[stype] = groups.get(stype, ()) + (declaration,)
            dirty.add(stype)
            added.append(declaration.name)
        else:
            existing = ordered.pop(op.name, None)
            if existing is None:
                raise DeltaError(
                    f"cannot remove {op.name!r}: not declared in the scene")
            stype = existing.succinct_type
            remaining = tuple(decl for decl in groups.get(stype, ())
                              if decl is not existing)
            if remaining:
                groups[stype] = remaining
            else:
                groups.pop(stype, None)
            dirty.add(stype)
            removed.append(op.name)

    if flat:
        new_base = Environment.reindexed(tuple(ordered.values()),
                                         ordered, groups)
    else:
        new_base = Environment(ordered.values())
    scene_key = (new_base.fingerprint(), tuple(prepared.subtypes.edges()))
    hit = engine.scenes.get(scene_key)
    if hit is not None:
        overrides = {}
        if prepared.goal is not None and prepared.goal != hit.goal:
            overrides["goal"] = prepared.goal
        if name is not None and name != hit.name:
            overrides["name"] = name
        if overrides:
            hit = dataclasses.replace(hit, **overrides)
        return DeltaOutcome(prepared=hit, added=tuple(added),
                            removed=tuple(removed), reused=True,
                            dirty_types=len(dirty))

    extended = _coerced(new_base, prepared)
    extended.adopt_prepared_state(prepared.environment, dirty)
    new_prepared = PreparedScene(
        name=name if name is not None else prepared.name,
        base_environment=new_base,
        environment=extended,
        subtypes=prepared.subtypes,
        fingerprint=extended.fingerprint(),
        goal=prepared.goal,
        scene_key=scene_key,
    )
    engine.scenes.put(scene_key, new_prepared)
    return DeltaOutcome(prepared=new_prepared, added=tuple(added),
                        removed=tuple(removed), reused=False,
                        dirty_types=len(dirty))
