"""Scene sessions: the engine-level API behind the IDE serving path.

A :class:`SceneSession` is a stateful cursor over one evolving scene:
``apply_delta`` advances it to the re-prepared scene for the edited
environment (see :mod:`repro.incremental.delta`), ``complete`` answers
queries against the current state through the owning
:class:`~repro.engine.engine.CompletionEngine` — same caches, same
result-identity guarantees as every other serving path — and
``render_text`` serialises the current state to canonical ``.ins`` text,
which is both the parity oracle (loading it fresh must reproduce this
session's rankings byte for byte) and what the serving layer journals so
respawned replicas replay to the same scene state.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Union

from repro.engine.engine import CompletionEngine, EngineResult, PreparedScene
from repro.incremental.delta import (DeltaOp, DeltaOutcome, apply_scene_delta,
                                     parse_delta_ops)


class SceneSession:
    """One evolving scene over a :class:`CompletionEngine`.

    Built via :meth:`CompletionEngine.open_session`.  The session opens on
    the *canonical* form of the scene — the result of serialising and
    reloading it — so ``fingerprint`` (and with it every cache key and
    content-derived scene id downstream) is guaranteed to match a fresh
    load of :meth:`render_text` at every step.  For scenes that came from
    ``.ins`` text in the first place the canonical form is the scene
    itself and opening reattaches the already-prepared state.
    """

    def __init__(self, engine: CompletionEngine, prepared: PreparedScene,
                 name: Optional[str] = None):
        self.engine = engine
        self.name = name if name is not None else prepared.name
        self.prepared = self._canonical(prepared)
        #: Deltas applied over the session's lifetime (batches, not ops).
        self.generation = 0
        self.ops_applied = 0

    def _canonical(self, prepared: PreparedScene) -> PreparedScene:
        from repro.lang.loader import load_environment_text
        from repro.lang.serializer import serialize_environment

        text = serialize_environment(prepared.base_environment,
                                     prepared.subtypes, prepared.goal)
        loaded = load_environment_text(text)
        if (loaded.environment.fingerprint()
                == prepared.base_environment.fingerprint()):
            return prepared
        # Programmatically built scene whose render metadata does not
        # round-trip exactly (e.g. a redundant display equal to the name):
        # session over the canonical reload; rankings are unaffected —
        # render fallbacks reproduce the same snippets — but fingerprints
        # must be the reloaded ones for the journal-replay contract.
        return self.engine.prepare(loaded.environment, loaded.subtypes,
                                   goal=loaded.goal or prepared.goal,
                                   name=self.name)

    # -- the session surface -------------------------------------------------

    def apply_delta(self, ops: Sequence[Union[DeltaOp, dict]]) -> DeltaOutcome:
        """Apply one batch of delta ops; the session advances on success."""
        parsed = [op if isinstance(op, DeltaOp) else DeltaOp.from_payload(op)
                  for op in ops]
        outcome = apply_scene_delta(self.engine, self.prepared, parsed,
                                    name=self.name)
        self.prepared = outcome.prepared
        self.generation += 1
        self.ops_applied += len(parsed)
        return outcome

    def complete(self, goal: Optional[Any] = None, *,
                 variant: Optional[str] = None,
                 policy=None, config=None,
                 n: Optional[int] = None,
                 context=None) -> EngineResult:
        """One completion against the session's current state."""
        return self.engine.complete(self.prepared, goal, variant=variant,
                                    policy=policy, config=config, n=n,
                                    context=context)

    def render_text(self, header: str = "") -> str:
        """The current state as canonical ``.ins`` text (the parity oracle)."""
        from repro.lang.serializer import serialize_environment

        return serialize_environment(self.prepared.base_environment,
                                     self.prepared.subtypes,
                                     self.prepared.goal, header=header)

    @property
    def fingerprint(self) -> str:
        return self.prepared.fingerprint

    @property
    def goal(self):
        return self.prepared.goal

    def __len__(self) -> int:
        return len(self.prepared.base_environment)

    def __repr__(self) -> str:
        return (f"SceneSession({self.name!r}, generation {self.generation}, "
                f"{len(self)} declarations)")


# Re-exported for callers that build wire ops by hand.
__all__ = ["SceneSession", "DeltaOp", "DeltaOutcome", "parse_delta_ops"]
