"""Incremental scene sessions: declaration deltas over prepared scenes.

The paper's real deployment is an editor plugin — the environment changes
one declaration at a time as the user types.  This package turns that
workload into engine primitives:

* :mod:`repro.incremental.delta` — declaration-level add/remove
  operations (:class:`DeltaOp`) and :func:`apply_scene_delta`, which
  re-prepares a scene by *extending* its arena and incrementally
  re-merging MATCH indexes instead of rebuilding, while the rebuilt flat
  environment fingerprint keeps the engine's result cache exact: a delta
  invalidates precisely the queries whose environment content changed.
* :mod:`repro.incremental.session` — :class:`SceneSession`, the
  ``open_session / apply_delta / complete`` API layered on
  :class:`~repro.engine.engine.CompletionEngine`, plus the canonical
  final-text rendering the serving layer journals for replica replay.

The gate for everything here is the parity property: a delta-edited
session produces byte-identical ranked snippets to a freshly built scene
loaded from the same final text.
"""

from repro.incremental.delta import (DeltaError, DeltaOp, DeltaOutcome,
                                     apply_scene_delta, parse_delta_ops)
from repro.incremental.session import SceneSession

__all__ = [
    "DeltaError", "DeltaOp", "DeltaOutcome",
    "apply_scene_delta", "parse_delta_ops",
    "SceneSession",
]
