"""Control flow as higher-order functions (paper §9, Conclusions).

"Note that the approach based on the techniques we presented can also
generate programs with various control patterns, because conditionals,
loops, and recursion schemas can themselves be viewed as higher-order
functions."

This module packages that observation: typed combinator *declarations*
that can be added to any environment, after which the unchanged core
synthesizes conditionals and (bounded) loops.  The simply typed calculus
is monomorphic, so combinators are instantiated per result type — exactly
how a front end would expose them for the types in scope.

Each declaration comes with a natural Scala-ish rendering and, via
:func:`denotations_for`, executable semantics compatible with
:mod:`repro.extensions.semantics`, so synthesized control-flow snippets
can also be *filtered by examples*.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.environment import (Declaration, DeclKind, RenderSpec,
                                    RenderStyle)
from repro.lang.parser import parse_type

#: Base-type name used for conditions.
BOOLEAN = "Boolean"


def if_then_else_declaration(result_type: str,
                             boolean_type: str = BOOLEAN) -> Declaration:
    """``ite[T] : Boolean -> T -> T -> T`` — a conditional expression."""
    # Conditionals are language syntax, not API: weight them like nearby
    # locals so they compete with ordinary declarations (the paper's
    # conclusion treats control flow as combinators available everywhere).
    return Declaration(
        name=f"$ite[{result_type}]",
        type=parse_type(f"{boolean_type} -> {result_type} -> {result_type} "
                        f"-> {result_type}"),
        kind=DeclKind.LOCAL,
        render=RenderSpec(RenderStyle.FUNCTION, "if"),
    )


def bounded_iteration_declaration(state_type: str,
                                  counter_type: str = "int") -> Declaration:
    """``iterate[T] : int -> (T -> T) -> T -> T`` — a fold over a counter.

    The bounded shape (rather than an unrestricted fixpoint) keeps every
    synthesized term total, so example-based filtering always terminates.
    """
    return Declaration(
        name=f"$iterate[{state_type}]",
        type=parse_type(f"{counter_type} -> ({state_type} -> {state_type}) "
                        f"-> {state_type} -> {state_type}"),
        kind=DeclKind.LOCAL,
        render=RenderSpec(RenderStyle.FUNCTION, "iterate"),
    )


def fold_declaration(element_type: str, list_type: str,
                     result_type: str) -> Declaration:
    """``fold[A, LA, B] : (B -> A -> B) -> B -> LA -> B`` — a recursion
    schema over a list-like type."""
    return Declaration(
        name=f"$fold[{element_type},{list_type},{result_type}]",
        type=parse_type(f"({result_type} -> {element_type} -> {result_type})"
                        f" -> {result_type} -> {list_type} -> {result_type}"),
        kind=DeclKind.LOCAL,
        render=RenderSpec(RenderStyle.FUNCTION, "fold"),
    )


def control_flow_declarations(result_types: list[str],
                              boolean_type: str = BOOLEAN,
                              ) -> list[Declaration]:
    """Conditionals and bounded loops instantiated at each result type."""
    declarations: list[Declaration] = []
    for result_type in result_types:
        declarations.append(if_then_else_declaration(result_type,
                                                     boolean_type))
        declarations.append(bounded_iteration_declaration(result_type))
    return declarations


def denotations_for(declarations: list[Declaration]) -> dict[str, Any]:
    """Executable semantics for the combinators (for example filtering)."""

    def ite(condition: Any, then_value: Any, else_value: Any) -> Any:
        return then_value if condition else else_value

    def iterate(count: int, step: Callable[[Any], Any], seed: Any) -> Any:
        value = seed
        for _ in range(max(int(count), 0)):
            value = step(value)
        return value

    def fold(combine: Callable[[Any, Any], Any], seed: Any,
             items: Any) -> Any:
        value = seed
        for item in items:
            value = combine(value, item)
        return value

    semantics: dict[str, Any] = {}
    for declaration in declarations:
        if declaration.name.startswith("$ite["):
            semantics[declaration.name] = ite
        elif declaration.name.startswith("$iterate["):
            semantics[declaration.name] = iterate
        elif declaration.name.startswith("$fold["):
            semantics[declaration.name] = fold
    return semantics
