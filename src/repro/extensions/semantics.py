"""Semantic filtering of synthesized snippets (paper §9, citing [16]).

The paper proposes using the ranked, complete stream of type-correct
expressions as the *first phase* of semantic synthesis: keep generating
candidates, discard those that violate a semantic specification — in the
simplest case, input/output examples.

This module supplies the two pieces:

* :func:`evaluate_term` — a call-by-value interpreter for long-normal-form
  terms.  Environment declarations are given Python *denotations* (values
  for nullary declarations, callables taking one positional argument per
  declared parameter otherwise).  Lambda binders become Python closures, so
  higher-order snippets (``x => p(x)``) evaluate naturally.  Coercions are
  identities, consistent with their erasure (§6).

* :func:`filter_snippets` — keep the snippets consistent with a list of
  :class:`Example` input/output pairs; evaluation errors count as
  inconsistency (a candidate that crashes on an example is wrong).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.errors import ReproError
from repro.core.subtyping import is_coercion_name
from repro.core.synthesizer import Snippet
from repro.core.terms import LNFTerm

#: A denotation: a ground value, or a callable applied to argument values.
Denotation = Any


class EvaluationError(ReproError):
    """A term could not be evaluated under the given denotations."""


@dataclass(frozen=True)
class Example:
    """One input/output example.

    ``inputs`` are fed to the term's lambda binders in order (empty for
    ground goals); ``output`` is compared with ``==``.
    """

    inputs: tuple
    output: Any

    @staticmethod
    def of(*inputs_then_output: Any) -> "Example":
        """``Example.of(2, 3, 5)`` reads "on inputs 2 and 3, expect 5"."""
        if not inputs_then_output:
            raise ValueError("an example needs at least an output")
        *inputs, output = inputs_then_output
        return Example(tuple(inputs), output)


def evaluate_term(term: LNFTerm, denotations: Mapping[str, Denotation],
                  _scope: Mapping[str, Any] | None = None) -> Any:
    """Evaluate a long-normal-form *term*.

    Heads are resolved against the lambda scope first, then *denotations*.
    A head applied to arguments must denote a callable of that arity.
    """
    scope: dict[str, Any] = dict(_scope or {})

    if term.binders:
        binder_names = [binder.name for binder in term.binders]
        body = LNFTerm((), term.head, term.arguments)

        def closure(*args: Any) -> Any:
            if len(args) != len(binder_names):
                raise EvaluationError(
                    f"lambda of {len(binder_names)} parameters called with "
                    f"{len(args)} arguments")
            inner = dict(scope)
            inner.update(zip(binder_names, args))
            return evaluate_term(body, denotations, inner)

        return closure

    arguments = [evaluate_term(argument, denotations, scope)
                 for argument in term.arguments]

    if is_coercion_name(term.head):
        if len(arguments) != 1:
            raise EvaluationError(f"coercion {term.head!r} is not unary")
        return arguments[0]

    if term.head in scope:
        value = scope[term.head]
    elif term.head in denotations:
        value = denotations[term.head]
    else:
        raise EvaluationError(f"no denotation for {term.head!r}")

    if not arguments:
        return value
    if not callable(value):
        raise EvaluationError(
            f"{term.head!r} applied to {len(arguments)} arguments but its "
            f"denotation is not callable")
    try:
        return value(*arguments)
    except EvaluationError:
        raise
    except Exception as exc:
        raise EvaluationError(
            f"evaluating {term.head!r} raised {exc!r}") from exc


def satisfies_examples(term: LNFTerm,
                       examples: Iterable[Example],
                       denotations: Mapping[str, Denotation]) -> bool:
    """Does *term* agree with every example?  Errors count as disagreement."""
    try:
        value = evaluate_term(term, denotations)
        for example in examples:
            result = value(*example.inputs) if example.inputs else value
            if result != example.output:
                return False
    except EvaluationError:
        return False
    return True


def filter_snippets(snippets: Sequence[Snippet],
                    examples: Iterable[Example],
                    denotations: Mapping[str, Denotation],
                    ) -> list[Snippet]:
    """The §9 pipeline: type-correct stream in, example-consistent out.

    Ranks are preserved from the input ordering (weight order), so the
    first surviving snippet is the best-ranked semantically correct one.
    """
    examples = list(examples)
    return [snippet for snippet in snippets
            if satisfies_examples(snippet.surface_term, examples,
                                  denotations)]
