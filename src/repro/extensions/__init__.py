"""Extensions the paper sketches beyond the core system (§9).

Two follow-on directions from the conclusions are implemented here:

* :mod:`repro.extensions.semantics` — "generate a stream of type-correct
  solutions and then filter it to contain only expressions that meet given
  specifications, such as postconditions (or, in the special case,
  input/output examples)": an evaluator for synthesized terms over
  user-supplied denotations, plus example-based filtering of snippet
  streams (the seed of semantic-based synthesis [16]).

* :mod:`repro.extensions.combinators` — "conditionals, loops, and recursion
  schemas can themselves be viewed as higher-order functions": typed
  control-flow combinators (if-then-else, bounded iteration, fold) that
  drop into any environment, letting the unchanged core synthesize
  programs *with control flow*.
"""

from repro.extensions.combinators import (bounded_iteration_declaration,
                                          control_flow_declarations,
                                          fold_declaration,
                                          if_then_else_declaration)
from repro.extensions.semantics import (EvaluationError, Example,
                                        evaluate_term, filter_snippets,
                                        satisfies_examples)

__all__ = [
    "bounded_iteration_declaration", "control_flow_declarations",
    "fold_declaration", "if_then_else_declaration",
    "EvaluationError", "Example", "evaluate_term", "filter_snippets",
    "satisfies_examples",
]
