"""The typed API model: classes, members, packages.

An :class:`ApiModel` registers classes (with their superclass edges) and
their members.  Each member lowers to one :class:`MemberTemplate` — a
declaration-to-be with its lambda type, render metadata and a *symbol key*
used for corpus-frequency lookup:

* constructor ``C(p1, ..., pn)``      lowers to  ``p1 -> ... -> pn -> C``
* instance method ``R m(p1..pn)``     lowers to  ``C -> p1 -> ... -> pn -> R``
* static method                        lowers to  ``p1 -> ... -> pn -> R``
* instance field ``T f``               lowers to  ``C -> T``
* static field                         lowers to  ``T``

Types are written as strings in the declaration language, so higher-order
Scala members (``def filter(p: Tree => Boolean)``) are expressible directly.
Class types use *simple* names (``FileInputStream``), which the model keeps
globally unique — same economy the paper's succinct environments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.environment import RenderSpec, RenderStyle
from repro.core.errors import EnvironmentError_
from repro.core.subtyping import SubtypeGraph
from repro.core.types import Type, function_type
from repro.lang.parser import parse_type


@dataclass(frozen=True)
class JavaClass:
    """A class (or interface — the model does not distinguish them)."""

    simple_name: str
    package: str
    extends: tuple[str, ...] = ()

    @property
    def qualified_name(self) -> str:
        return f"{self.package}.{self.simple_name}"


@dataclass(frozen=True)
class MemberTemplate:
    """One declaration-to-be produced by lowering a class member."""

    name: str              # globally unique (includes the overload signature)
    symbol: str            # corpus-frequency key (no overload signature)
    type: Type
    package: str
    render: RenderSpec

    def __str__(self) -> str:
        return f"{self.name} : {self.type}"


class ClassHandle:
    """Fluent member-definition handle returned by :meth:`ApiModel.add_class`."""

    def __init__(self, model: "ApiModel", java_class: JavaClass):
        self._model = model
        self.java_class = java_class

    @property
    def name(self) -> str:
        return self.java_class.simple_name

    def constructor(self, *parameters: str) -> "ClassHandle":
        """Register a constructor with the given parameter type texts."""
        cls = self.java_class
        signature = ",".join(parameters)
        self._model._add_member(MemberTemplate(
            name=f"{cls.qualified_name}.new({signature})",
            symbol=f"{cls.qualified_name}.new",
            type=_member_type(parameters, cls.simple_name),
            package=cls.package,
            render=RenderSpec(RenderStyle.CONSTRUCTOR, cls.simple_name),
        ))
        return self

    def method(self, name: str, parameters: Iterable[str], returns: str,
               static: bool = False) -> "ClassHandle":
        """Register a method; instance methods take the receiver first."""
        cls = self.java_class
        parameters = list(parameters)
        signature = ",".join(parameters)
        if static:
            lowered = _member_type(parameters, returns)
            render = RenderSpec(RenderStyle.STATIC_METHOD,
                                f"{cls.simple_name}.{name}")
        else:
            lowered = _member_type([cls.simple_name] + parameters, returns)
            render = RenderSpec(RenderStyle.METHOD, name)
        self._model._add_member(MemberTemplate(
            name=f"{cls.qualified_name}.{name}({signature})",
            symbol=f"{cls.qualified_name}.{name}",
            type=lowered,
            package=cls.package,
            render=render,
        ))
        return self

    def field(self, name: str, type_text: str,
              static: bool = False) -> "ClassHandle":
        """Register a field."""
        cls = self.java_class
        if static:
            lowered = parse_type(type_text)
            render = RenderSpec(RenderStyle.STATIC_FIELD,
                                f"{cls.simple_name}.{name}")
        else:
            lowered = _member_type([cls.simple_name], type_text)
            render = RenderSpec(RenderStyle.FIELD, name)
        self._model._add_member(MemberTemplate(
            name=f"{cls.qualified_name}.{name}",
            symbol=f"{cls.qualified_name}.{name}",
            type=lowered,
            package=cls.package,
            render=render,
        ))
        return self


def _member_type(parameters: Iterable[str], returns: str) -> Type:
    parsed = [parse_type(text) for text in parameters]
    return function_type(parsed, parse_type(returns))


class ApiModel:
    """A registry of classes and lowered member declarations."""

    def __init__(self) -> None:
        self._classes: dict[str, JavaClass] = {}      # by simple name
        self._members: list[MemberTemplate] = []
        self._member_names: set[str] = set()

    # -- construction ----------------------------------------------------------

    def add_class(self, qualified_name: str,
                  extends: Iterable[str] = ()) -> ClassHandle:
        """Register a class by qualified name, e.g. ``java.io.File``.

        ``extends`` lists *simple* names of direct supertypes (classes or
        interfaces).  Simple names must be globally unique in the model.
        """
        package, _, simple = qualified_name.rpartition(".")
        if not package:
            raise EnvironmentError_(
                f"class name must be package-qualified: {qualified_name!r}")
        if simple in self._classes:
            raise EnvironmentError_(f"duplicate class simple name: {simple!r}")
        java_class = JavaClass(simple, package, tuple(extends))
        self._classes[simple] = java_class
        return ClassHandle(self, java_class)

    def _add_member(self, member: MemberTemplate) -> None:
        if member.name in self._member_names:
            raise EnvironmentError_(f"duplicate member: {member.name!r}")
        self._member_names.add(member.name)
        self._members.append(member)

    def merge(self, other: "ApiModel") -> "ApiModel":
        """Merge *other* into this model (used to combine JDK modules)."""
        for java_class in other._classes.values():
            if java_class.simple_name in self._classes:
                raise EnvironmentError_(
                    f"duplicate class on merge: {java_class.simple_name!r}")
            self._classes[java_class.simple_name] = java_class
        for member in other._members:
            self._add_member(member)
        return self

    # -- queries ---------------------------------------------------------------

    def classes(self) -> list[JavaClass]:
        return list(self._classes.values())

    def lookup_class(self, simple_name: str) -> Optional[JavaClass]:
        return self._classes.get(simple_name)

    def members(self) -> list[MemberTemplate]:
        return list(self._members)

    def members_of_packages(self, packages: Iterable[str],
                            ) -> list[MemberTemplate]:
        wanted = set(packages)
        return [member for member in self._members
                if member.package in wanted]

    def packages(self) -> list[str]:
        return sorted({cls.package for cls in self._classes.values()})

    def subtype_graph(self) -> SubtypeGraph:
        """Direct subtype edges from every ``extends`` declaration."""
        graph = SubtypeGraph()
        for java_class in self._classes.values():
            for supertype in java_class.extends:
                graph.add_edge(java_class.simple_name, supertype)
        return graph

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:
        return (f"ApiModel({len(self._classes)} classes, "
                f"{len(self._members)} members)")
