"""Program points: turning a cursor context into a weighted environment.

The paper's plugin extracts, at the cursor, the local values, the members of
the enclosing class, same-package members, imported API members and literal
constants — each with the Table 1 nature that fixes its base weight.
:class:`ProgramPoint` is that extraction step for the synthetic model:
declare locals, import packages, add distractors, and ``build()`` a
:class:`Scene` ready for the synthesizer.

Declaration order mirrors lexical distance in reverse: bulk imports first,
then package members, class members, literals and finally locals — so that
tie-breaking among equal-weight candidates (which follows declaration
order) does not accidentally favour close declarations when weights are
disabled, exactly the situation the "No weights" ablation probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.core.environment import (Declaration, DeclKind, Environment,
                                    RenderSpec, RenderStyle)
from repro.core.errors import BenchmarkError
from repro.core.subtyping import SubtypeGraph
from repro.core.types import Type
from repro.javamodel.distractors import DistractorGenerator
from repro.javamodel.model import ApiModel, MemberTemplate
from repro.lang.parser import parse_type


@dataclass
class Scene:
    """A fully built program point, ready for synthesis."""

    name: str
    environment: Environment
    subtypes: SubtypeGraph
    goal: Optional[Type]
    initial_count: int
    import_count: int
    local_count: int

    def __repr__(self) -> str:
        return (f"Scene({self.name!r}, {self.initial_count} declarations, "
                f"goal={self.goal})")


class ProgramPoint:
    """Builder for one synthesis scene."""

    def __init__(self, api: ApiModel,
                 frequencies: Optional[Mapping[str, int]] = None,
                 name: str = "scene"):
        self._api = api
        self._frequencies = frequencies or {}
        self._name = name
        self._imports: list[MemberTemplate] = []
        self._package_members: list[Declaration] = []
        self._class_members: list[Declaration] = []
        self._literals: list[Declaration] = []
        self._locals: list[Declaration] = []
        self._goal: Optional[Type] = None
        self._extra_subtypes: list[tuple[str, str]] = []
        self._imported_names: set[str] = set()

    # -- context construction ---------------------------------------------------

    def import_packages(self, *packages: str) -> "ProgramPoint":
        """Import every member of the given model packages."""
        for member in self._api.members_of_packages(packages):
            self._add_import(member)
        return self

    def import_all(self) -> "ProgramPoint":
        """Import the entire modelled API."""
        for member in self._api.members():
            self._add_import(member)
        return self

    def add_distractors(self, count: int, seed: int = 0,
                        confusable_types: Iterable[str] = (),
                        ) -> "ProgramPoint":
        """Pad the imports with *count* generated declarations."""
        generator = DistractorGenerator(
            seed=seed, confusable_types=tuple(confusable_types))
        for member in generator.generate(count):
            self._add_import(member)
        return self

    def _add_import(self, member: MemberTemplate) -> None:
        if member.name in self._imported_names:
            return
        self._imported_names.add(member.name)
        self._imports.append(member)

    def add_local(self, name: str, type_text: str) -> "ProgramPoint":
        """A local value in the enclosing method (Table 1: Local, 5)."""
        self._locals.append(Declaration(
            name, parse_type(type_text), DeclKind.LOCAL,
            render=RenderSpec(RenderStyle.VALUE, name)))
        return self

    def add_class_member(self, name: str, type_text: str,
                         style: RenderStyle = RenderStyle.VALUE,
                         display: str = "") -> "ProgramPoint":
        """A member of the enclosing class (Table 1: Class, 20)."""
        self._class_members.append(Declaration(
            name, parse_type(type_text), DeclKind.CLASS_MEMBER,
            render=RenderSpec(style, display or name)))
        return self

    def add_package_member(self, name: str, type_text: str,
                           style: RenderStyle = RenderStyle.VALUE,
                           display: str = "") -> "ProgramPoint":
        """A same-package member (Table 1: Package, 25)."""
        self._package_members.append(Declaration(
            name, parse_type(type_text), DeclKind.PACKAGE_MEMBER,
            render=RenderSpec(style, display or name)))
        return self

    def add_literal(self, code: str, type_text: str) -> "ProgramPoint":
        """A literal constant the tool may insert (Table 1: Literal, 200)."""
        self._literals.append(Declaration(
            code, parse_type(type_text), DeclKind.LITERAL,
            render=RenderSpec(RenderStyle.LITERAL, code)))
        return self

    def add_subtype(self, subtype: str, supertype: str) -> "ProgramPoint":
        """Declare an extra subtype edge not present in the API model."""
        self._extra_subtypes.append((subtype, supertype))
        return self

    def set_goal(self, type_text: str) -> "ProgramPoint":
        """The desired type at the cursor."""
        self._goal = parse_type(type_text)
        return self

    # -- build -----------------------------------------------------------------

    def build(self) -> Scene:
        """Assemble the weighted environment and subtype graph."""
        import_declarations = [
            Declaration(member.name, member.type, DeclKind.IMPORTED,
                        frequency=self._frequencies.get(member.symbol, 0),
                        render=member.render)
            for member in self._imports
        ]
        ordered = (import_declarations + self._package_members
                   + self._class_members + self._literals + self._locals)
        try:
            environment = Environment(ordered)
        except Exception as exc:  # re-raise with the scene name for context
            raise BenchmarkError(
                f"scene {self._name!r} has inconsistent declarations: {exc}"
            ) from exc

        graph = self._api.subtype_graph()
        for subtype, supertype in self._extra_subtypes:
            graph.add_edge(subtype, supertype)

        return Scene(
            name=self._name,
            environment=environment,
            subtypes=graph,
            goal=self._goal,
            initial_count=len(environment),
            import_count=len(import_declarations),
            local_count=len(self._locals),
        )
