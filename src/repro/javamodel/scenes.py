"""The paper's three motivating examples (§2.1–§2.3) as ready-made scenes.

* :func:`sequence_of_streams_scene` — §2.1 / Figure 1: concatenating two
  streams into a ``SequenceInputStream``; 3356 visible declarations in the
  paper, expected snippet in the top five in under 250 ms.
* :func:`tree_filter_scene` — §2.2: the Scala IDE ``TreeWrapper.filter``
  fragment needing the higher-order constructor
  ``new FilterTypeTreeTraverser(var1 => p(var1))``; ~4000 declarations,
  expected snippet ranked first.
* :func:`drawing_layout_scene` — §2.3: the ``java.awt`` getter
  ``panel.getLayout()`` requiring subtyping (``Panel <: Container``);
  4965 declarations, expected snippet ranked second.
"""

from __future__ import annotations

from repro.corpus.synthetic import default_frequencies
from repro.javamodel.jdk import shared_jdk
from repro.javamodel.model import ApiModel
from repro.javamodel.scope import ProgramPoint, Scene

#: Paper-reported visible-declaration counts for the three examples.
FIGURE1_INITIAL = 3356
TREE_FILTER_INITIAL = 4000
DRAWING_LAYOUT_INITIAL = 4965

#: Paper-reported succinct-type count for the Figure 1 environment (§3.2).
FIGURE1_SUCCINCT_TYPES = 1783


def sequence_of_streams_scene() -> Scene:
    """§2.1: ``val stream: SequenceInputStream = ?`` with streams in scope."""
    point = (ProgramPoint(shared_jdk(), default_frequencies().as_mapping(),
                          name="sequence-of-streams")
             .import_packages("java.io", "java.lang", "java.util"))
    base = len(point._imports) + 2 + 2
    point.add_distractors(FIGURE1_INITIAL - base, seed=21,
                          confusable_types=("SequenceInputStream",
                                            "InputStream"))
    point.add_local("body", "InputStream")
    point.add_local("sig", "FileInputStream")
    point.add_literal('"header.bin"', "String")
    point.add_literal("0", "int")
    point.set_goal("SequenceInputStream")
    return point.build()


def _scala_ide_model() -> ApiModel:
    """A slice of the Scala IDE / compiler API around TypeTreeTraverser."""
    model = ApiModel()
    tree = model.add_class("scala.reflect.Tree")
    tree.method("symbol", [], "Symbol")
    tree.method("children", [], "TreeList")
    tree.method("isEmpty", [], "Boolean")
    model.add_class("scala.reflect.Symbol") \
        .method("name", [], "ScalaString") \
        .method("isType", [], "Boolean")
    model.add_class("scala.reflect.TreeList") \
        .method("toList", [], "TreeList") \
        .method("headOption", [], "Tree")
    model.add_class("scala.Boolean2")
    model.add_class("scala.ScalaString")

    traverser = model.add_class("scala.tools.eclipse.Traverser")
    traverser.method("traverse", ["Tree"], "Unit")
    model.add_class("scala.Unit")

    filter_traverser = model.add_class(
        "scala.tools.eclipse.FilterTypeTreeTraverser",
        extends=["Traverser"])
    filter_traverser.constructor("Tree -> Boolean")
    filter_traverser.method("hits", [], "TreeList")

    model.add_class("scala.tools.eclipse.TypeTreeTraverser",
                    extends=["Traverser"]).constructor()
    return model


def tree_filter_scene() -> Scene:
    """§2.2: synthesising a higher-order constructor argument."""
    jdk = shared_jdk()
    ide = _scala_ide_model()
    combined = ApiModel()
    combined.merge(ide)
    # The Scala IDE scene also sees the usual Java/Scala imports.
    point = ProgramPoint(_merged(combined, jdk),
                         default_frequencies().as_mapping(),
                         name="tree-filter")
    point.import_all()
    base = len(point._imports) + 2
    point.add_distractors(TREE_FILTER_INITIAL - base, seed=22,
                          confusable_types=("FilterTypeTreeTraverser",))
    point.add_local("tree", "Tree")
    point.add_local("p", "Tree -> Boolean")
    point.set_goal("FilterTypeTreeTraverser")
    return point.build()


def _merged(target: ApiModel, source: ApiModel) -> ApiModel:
    """Merge *source* into *target* (kept separate for readability)."""
    return target.merge(source)


def drawing_layout_scene() -> Scene:
    """§2.3: ``def getLayout: LayoutManager = ?`` — requires subtyping."""
    point = (ProgramPoint(shared_jdk(), default_frequencies().as_mapping(),
                          name="drawing-layout")
             .import_packages("java.awt", "java.awt.event", "java.lang",
                              "java.util", "javax.swing",
                              "javax.accessibility", "java.awt.image"))
    base = len(point._imports) + 1
    point.add_distractors(DRAWING_LAYOUT_INITIAL - base, seed=23,
                          confusable_types=("LayoutManager",))
    point.add_local("panel", "Panel")
    point.set_goal("LayoutManager")
    return point.build()
