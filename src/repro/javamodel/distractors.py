"""Deterministic distractor generation.

The paper's benchmarks deliberately widen imports so each program point sees
3,000-10,700 declarations (Table 2's ``#Initial``), of which only a handful
matter.  Our hand-modelled JDK is a few hundred members, so scenes are
padded with generated API surface: plausible-looking classes whose members

* mostly live in their own opaque type world (search-space ballast),
* partly consume and produce *common* types (``String``, ``int``,
  ``Object``) — these create well-typed but unwanted candidate snippets,
* occasionally return a *confusable* type (the goal type or a subtype) —
  these create direct competitors that the weight function must rank below
  the intended snippet, which is precisely the discrimination Table 2's
  "No weights" column fails at.

Generation is seeded, so every benchmark scene is reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.core.environment import RenderSpec, RenderStyle
from repro.javamodel.model import MemberTemplate, _member_type

#: Default pool of widely-inhabited types distractors may touch.
DEFAULT_COMMON_TYPES = ("String", "int", "boolean", "Object", "long")

_CLASS_STEMS = [
    "Widget", "Handler", "Manager", "Helper", "Provider", "Adapter",
    "Builder", "Context", "Registry", "Session", "Channel", "Buffer",
    "Codec", "Parser", "Formatter", "Resolver", "Monitor", "Tracker",
    "Dispatcher", "Validator", "Wrapper", "Factory", "Proxy", "Gateway",
]
_METHOD_STEMS = [
    "process", "handle", "create", "resolve", "lookup", "convert",
    "transform", "fetch", "compute", "merge", "split", "encode", "decode",
    "validate", "register", "release", "acquire", "update", "refresh",
    "collect",
]
_PACKAGE_STEMS = ["core", "util", "impl", "api", "spi", "net", "data",
                  "text", "model", "event"]


class DistractorGenerator:
    """Seeded generator of imported-API ballast for a scene."""

    def __init__(self, seed: int = 0,
                 common_types: Sequence[str] = DEFAULT_COMMON_TYPES,
                 confusable_types: Sequence[str] = ()):
        self._rng = random.Random(seed)
        self._common = list(common_types)
        self._confusable = list(confusable_types)
        self._counter = 0

    def generate(self, count: int,
                 package_root: str = "gen.api") -> list[MemberTemplate]:
        """Generate exactly *count* member declarations."""
        members: list[MemberTemplate] = []
        while len(members) < count:
            members.extend(self._generate_class(package_root,
                                                count - len(members)))
        return members[:count]

    # -- internals -------------------------------------------------------------

    def _fresh_class(self, package_root: str) -> tuple[str, str]:
        stem = self._rng.choice(_CLASS_STEMS)
        package = (f"{package_root}."
                   f"{self._rng.choice(_PACKAGE_STEMS)}{self._counter % 7}")
        name = f"{stem}{self._counter}"
        self._counter += 1
        return package, name

    def _pick_type(self, own_type: str, include_confusable: bool) -> str:
        roll = self._rng.random()
        if include_confusable and self._confusable and roll < 0.04:
            return self._rng.choice(self._confusable)
        if roll < 0.45:
            return self._rng.choice(self._common)
        return own_type

    def _generate_class(self, package_root: str,
                        budget: int) -> list[MemberTemplate]:
        package, simple = self._fresh_class(package_root)
        qualified = f"{package}.{simple}"
        members: list[MemberTemplate] = []

        member_count = min(budget, self._rng.randint(6, 14))
        index = 0
        while len(members) < member_count:
            kind_roll = self._rng.random()
            if index == 0 and kind_roll < 0.55:
                # A constructor so that the class world is actually reachable.
                parameters = [self._rng.choice(self._common)
                              for _ in range(self._rng.randint(0, 2))]
                signature = ",".join(parameters)
                members.append(MemberTemplate(
                    name=f"{qualified}.new({signature})",
                    symbol=f"{qualified}.new",
                    type=_member_type(parameters, simple),
                    package=package,
                    render=RenderSpec(RenderStyle.CONSTRUCTOR, simple),
                ))
                index += 1
                continue

            # The index suffix keeps member names collision-free, so padding
            # counts are exact (duplicates would be silently deduplicated).
            method = f"{self._rng.choice(_METHOD_STEMS)}{index}"
            static = self._rng.random() < 0.4
            parameter_count = self._rng.randint(0, 3)
            # Only instance methods may return confusable types: reaching
            # them costs a receiver construction too, so they compete on
            # size (the "No weights" ablation) without beating locally-
            # anchored snippets under the locality-only weight policy.
            returns = self._pick_type(simple, include_confusable=not static)
            if returns in self._confusable and parameter_count == 0:
                # Confusable producers always take an argument, so their
                # cheapest instantiation still costs ctor + method + arg —
                # strictly above a two-constructor local-anchored snippet
                # under the no-corpus policy.
                parameter_count = 1
            if static:
                # Static helpers range over the shared common-type pool the
                # way real utility classes do — which is also what gives the
                # environment its sigma-collision rate (§3.2): statics with
                # permuted common-typed signatures share succinct types.
                parameters = [self._rng.choice(self._common)
                              for _ in range(parameter_count)]
            else:
                parameters = [self._pick_type(simple, include_confusable=False)
                              for _ in range(parameter_count)]
            members.append(self._method_template(
                qualified, package, simple, method, parameters, returns,
                static))
            index += 1

            # Real APIs are overload-heavy; frequently add a permuted or
            # argument-duplicated overload — by construction it collapses
            # onto the same succinct type (§3.2's compression source).
            if len(parameters) >= 2 and len(members) < member_count and \
                    self._rng.random() < 0.55:
                permuted = list(parameters)
                self._rng.shuffle(permuted)
                if self._rng.random() < 0.4:
                    permuted.append(self._rng.choice(permuted))
                if permuted != parameters:
                    members.append(self._method_template(
                        qualified, package, simple, method, permuted,
                        returns, static))
        return members

    def _method_template(self, qualified: str, package: str, simple: str,
                         method: str, parameters: list[str], returns: str,
                         static: bool) -> MemberTemplate:
        signature = ",".join(parameters)
        if static:
            lowered = _member_type(parameters, returns)
            render = RenderSpec(RenderStyle.STATIC_METHOD,
                                f"{simple}.{method}")
        else:
            lowered = _member_type([simple] + parameters, returns)
            render = RenderSpec(RenderStyle.METHOD, method)
        return MemberTemplate(
            name=f"{qualified}.{method}({signature})",
            symbol=f"{qualified}.{method}",
            type=lowered,
            package=package,
            render=render,
        )
