"""Synthetic typed Java/Scala API model.

The paper's tool asks the Scala presentation compiler for every declaration
visible at the cursor.  Python has no such typed oracle, so this package
models one: classes with constructors, methods and fields organised into
packages (:mod:`repro.javamodel.model`), a hand-modelled core of the JDK
surface the 50 benchmarks exercise (:mod:`repro.javamodel.jdk`), a
program-point scope builder translating locals/imports into a weighted
environment (:mod:`repro.javamodel.scope`), and a deterministic distractor
generator that pads scenes to the paper's ``#Initial`` declaration counts
(:mod:`repro.javamodel.distractors`).
"""

from repro.javamodel.distractors import DistractorGenerator
from repro.javamodel.jdk import build_jdk
from repro.javamodel.model import (ApiModel, ClassHandle, JavaClass,
                                   MemberTemplate)
from repro.javamodel.scope import ProgramPoint, Scene

__all__ = [
    "ApiModel", "ClassHandle", "JavaClass", "MemberTemplate",
    "ProgramPoint", "Scene", "DistractorGenerator", "build_jdk",
]
