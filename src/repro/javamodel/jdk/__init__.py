"""The hand-modelled JDK surface.

One module per package, each contributing to a shared :class:`ApiModel`.
The surface covers everything the paper's 50 benchmarks (Table 2) and the
three motivating examples (§2) touch: the ``java.io`` stream/reader/writer
hierarchies, ``java.awt`` components and layout managers, ``javax.swing``
widgets, ``java.net`` sockets and URLs, core ``java.lang`` and a slice of
``java.util`` — several hundred members in total, with realistic subtype
structure (``FileInputStream <: InputStream``, ``Panel <: Container <:
Component``, ...).
"""

from functools import lru_cache

from repro.javamodel.jdk import awt, io, lang, net, swing, util
from repro.javamodel.model import ApiModel


def build_jdk() -> ApiModel:
    """Build the full modelled JDK (fresh, mutable copy)."""
    model = ApiModel()
    lang.build(model)
    io.build(model)
    net.build(model)
    awt.build(model)
    swing.build(model)
    util.build(model)
    return model


@lru_cache(maxsize=1)
def shared_jdk() -> ApiModel:
    """A memoised JDK instance for read-only use (scenes, benchmarks)."""
    return build_jdk()
