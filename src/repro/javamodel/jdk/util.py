"""java.util — collections and utilities (a representative slice)."""

from repro.javamodel.model import ApiModel


def build(model: ApiModel) -> None:
    model.add_class("java.util.Collection")
    model.add_class("java.util.Enumeration")

    iterator = model.add_class("java.util.Iterator")
    iterator.method("hasNext", [], "boolean")
    iterator.method("next", [], "Object")

    list_ = model.add_class("java.util.List", extends=["Collection"])
    list_.method("get", ["int"], "Object")
    list_.method("size", [], "int")
    list_.method("add", ["Object"], "boolean")
    list_.method("isEmpty", [], "boolean")
    list_.method("iterator", [], "Iterator")

    array_list = model.add_class("java.util.ArrayList",
                                 extends=["Object", "List", "Cloneable",
                                          "Serializable"])
    array_list.constructor()
    array_list.constructor("int")
    array_list.constructor("Collection")

    linked_list = model.add_class("java.util.LinkedList",
                                  extends=["Object", "List"])
    linked_list.constructor()
    linked_list.method("getFirst", [], "Object")
    linked_list.method("getLast", [], "Object")

    vector = model.add_class("java.util.Vector", extends=["Object", "List"])
    vector.constructor()
    vector.constructor("int")
    vector.method("elements", [], "Enumeration")
    vector.method("elementAt", ["int"], "Object")

    stack = model.add_class("java.util.Stack", extends=["Vector"])
    stack.constructor()
    stack.method("push", ["Object"], "Object")
    stack.method("pop", [], "Object")
    stack.method("peek", [], "Object")

    map_ = model.add_class("java.util.Map")
    map_.method("get", ["Object"], "Object")
    map_.method("put", ["Object", "Object"], "Object")
    map_.method("containsKey", ["Object"], "boolean")
    map_.method("keySet", [], "Set")
    map_.method("size", [], "int")

    hash_map = model.add_class("java.util.HashMap",
                               extends=["Object", "Map", "Cloneable",
                                        "Serializable"])
    hash_map.constructor()
    hash_map.constructor("int")
    hash_map.constructor("Map")

    tree_map = model.add_class("java.util.TreeMap", extends=["Object", "Map"])
    tree_map.constructor()
    tree_map.method("firstKey", [], "Object")

    set_ = model.add_class("java.util.Set", extends=["Collection"])
    set_.method("contains", ["Object"], "boolean")

    hash_set = model.add_class("java.util.HashSet",
                               extends=["Object", "Set", "Cloneable",
                                        "Serializable"])
    hash_set.constructor()
    hash_set.constructor("Collection")

    date = model.add_class("java.util.Date",
                           extends=["Object", "Cloneable", "Serializable"])
    date.constructor()
    date.constructor("long")
    date.method("getTime", [], "long")
    date.method("before", ["Date"], "boolean")
    date.method("after", ["Date"], "boolean")

    calendar = model.add_class("java.util.Calendar", extends=["Object"])
    calendar.method("getInstance", [], "Calendar", static=True)
    calendar.method("getTime", [], "Date")
    calendar.method("get", ["int"], "int")

    random = model.add_class("java.util.Random",
                             extends=["Object", "Serializable"])
    random.constructor()
    random.constructor("long")
    random.method("nextInt", ["int"], "int")
    random.method("nextDouble", [], "double")
    random.method("nextBoolean", [], "boolean")

    scanner = model.add_class("java.util.Scanner",
                              extends=["Object", "Closeable"])
    scanner.constructor("InputStream")
    scanner.constructor("File")
    scanner.constructor("String")
    scanner.constructor("Readable")
    scanner.method("nextLine", [], "String")
    scanner.method("nextInt", [], "int")
    scanner.method("hasNext", [], "boolean")

    string_tokenizer = model.add_class("java.util.StringTokenizer",
                                       extends=["Object", "Enumeration"])
    string_tokenizer.constructor("String")
    string_tokenizer.constructor("String", "String")
    string_tokenizer.method("nextToken", [], "String")
    string_tokenizer.method("hasMoreTokens", [], "boolean")
    string_tokenizer.method("countTokens", [], "int")

    properties = model.add_class("java.util.Properties",
                                 extends=["Object", "Map2"])
    properties.constructor()
    properties.method("getProperty", ["String"], "String")
    properties.method("setProperty", ["String", "String"], "Object")
    properties.method("load", ["InputStream"], "void")
    properties.method("store", ["OutputStream", "String"], "void")

    model.add_class("java.util.Map2")

    locale = model.add_class("java.util.Locale",
                             extends=["Object", "Cloneable", "Serializable"])
    locale.constructor("String")
    locale.constructor("String", "String")
    locale.method("getLanguage", [], "String")
    locale.field("US", "Locale", static=True)
    locale.field("UK", "Locale", static=True)

    timezone = model.add_class("java.util.TimeZone",
                               extends=["Object", "Cloneable", "Serializable"])
    timezone.method("getDefault", [], "TimeZone", static=True)
    timezone.method("getID", [], "String")

    arrays = model.add_class("java.util.Arrays", extends=["Object"])
    arrays.method("toString", ["ObjectArray"], "String", static=True)
    arrays.method("asList", ["ObjectArray"], "List", static=True)

    collections = model.add_class("java.util.Collections", extends=["Object"])
    collections.method("emptyList", [], "List", static=True)
    collections.method("singletonList", ["Object"], "List", static=True)
    collections.method("unmodifiableList", ["List"], "List", static=True)

    observable = model.add_class("java.util.Observable", extends=["Object"])
    observable.constructor()
    observable.method("addObserver", ["Observer"], "void")
    observable.method("notifyObservers", [], "void")

    model.add_class("java.util.Observer") \
        .method("update", ["Observable", "Object"], "void")

    uuid = model.add_class("java.util.UUID",
                           extends=["Object", "Serializable"])
    uuid.method("randomUUID", [], "UUID", static=True)
    uuid.method("fromString", ["String"], "UUID", static=True)

    bitset = model.add_class("java.util.BitSet",
                             extends=["Object", "Cloneable", "Serializable"])
    bitset.constructor()
    bitset.constructor("int")
    bitset.method("set", ["int"], "void")
    bitset.method("cardinality", [], "int")
