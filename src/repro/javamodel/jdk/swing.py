"""javax.swing — widgets, models and helpers."""

from repro.javamodel.model import ApiModel


def build(model: ApiModel) -> None:
    _build_core(model)
    _build_buttons(model)
    _build_text(model)
    _build_containers(model)
    _build_models(model)
    _build_misc(model)


def _build_core(model: ApiModel) -> None:
    jcomponent = model.add_class("javax.swing.JComponent", extends=["Container"])
    jcomponent.method("getBorder", [], "Border")
    jcomponent.method("setBorder", ["Border"], "void")
    jcomponent.method("getToolTipText", [], "String")
    jcomponent.method("setToolTipText", ["String"], "void")
    jcomponent.method("getRootPane", [], "JRootPane")
    jcomponent.method("revalidate", [], "void")
    jcomponent.method("getTransferHandler", [], "TransferHandler")
    jcomponent.method("setTransferHandler", ["TransferHandler"], "void")

    model.add_class("javax.swing.border.Border")
    model.add_class("javax.swing.Icon")

    jpanel = model.add_class("javax.swing.JPanel",
                             extends=["JComponent", "Accessible"])
    jpanel.constructor()
    jpanel.constructor("LayoutManager")

    jrootpane = model.add_class("javax.swing.JRootPane",
                                extends=["JComponent", "Accessible"])
    jrootpane.constructor()
    jrootpane.method("getContentPane", [], "Container")

    jlabel = model.add_class("javax.swing.JLabel",
                             extends=["JComponent", "SwingConstants", "Accessible"])
    jlabel.constructor()
    jlabel.constructor("String")
    jlabel.constructor("String", "int")
    jlabel.constructor("Icon")
    jlabel.method("getText", [], "String")
    jlabel.method("setText", ["String"], "void")
    jlabel.method("getIcon", [], "Icon")

    model.add_class("javax.swing.SwingConstants")


def _build_buttons(model: ApiModel) -> None:
    abstract_button = model.add_class("javax.swing.AbstractButton",
                                      extends=["JComponent", "ItemSelectable"])
    abstract_button.method("getText", [], "String")
    abstract_button.method("setText", ["String"], "void")
    abstract_button.method("doClick", [], "void")
    abstract_button.method("addActionListener", ["ActionListener"], "void")
    abstract_button.method("isSelected", [], "boolean")
    abstract_button.method("setSelected", ["boolean"], "void")

    model.add_class("java.awt.ItemSelectable")

    jbutton = model.add_class("javax.swing.JButton",
                              extends=["AbstractButton", "Accessible"])
    jbutton.constructor()
    jbutton.constructor("String")
    jbutton.constructor("Icon")
    jbutton.constructor("String", "Icon")

    jtoggle = model.add_class("javax.swing.JToggleButton",
                              extends=["AbstractButton", "Accessible"])
    jtoggle.constructor()
    jtoggle.constructor("String")
    jtoggle.constructor("String", "boolean")
    jtoggle.constructor("Icon")

    jcheckbox = model.add_class("javax.swing.JCheckBox",
                                extends=["JToggleButton", "Accessible"])
    jcheckbox.constructor()
    jcheckbox.constructor("String")
    jcheckbox.constructor("String", "boolean")
    jcheckbox.constructor("Icon")

    jradio = model.add_class("javax.swing.JRadioButton",
                             extends=["JToggleButton", "Accessible"])
    jradio.constructor()
    jradio.constructor("String")

    jmenuitem = model.add_class("javax.swing.JMenuItem",
                                extends=["AbstractButton", "Accessible"])
    jmenuitem.constructor()
    jmenuitem.constructor("String")

    jmenu = model.add_class("javax.swing.JMenu",
                            extends=["JMenuItem", "Accessible"])
    jmenu.constructor()
    jmenu.constructor("String")
    jmenu.method("add", ["JMenuItem"], "JMenuItem")

    jmenubar = model.add_class("javax.swing.JMenuBar",
                               extends=["JComponent", "Accessible"])
    jmenubar.constructor()
    jmenubar.method("add", ["JMenu"], "JMenu")


def _build_text(model: ApiModel) -> None:
    text_component = model.add_class("javax.swing.text.JTextComponent",
                                     extends=["JComponent", "Accessible"])
    text_component.method("getText", [], "String")
    text_component.method("setText", ["String"], "void")
    text_component.method("getDocument", [], "Document")
    text_component.method("getCaretPosition", [], "int")

    model.add_class("javax.swing.text.Document")

    jtextfield = model.add_class("javax.swing.JTextField",
                                 extends=["JTextComponent", "SwingConstants2"])
    jtextfield.constructor()
    jtextfield.constructor("String")
    jtextfield.constructor("String", "int")
    jtextfield.constructor("int")
    jtextfield.method("addActionListener", ["ActionListener"], "void")

    model.add_class("javax.swing.SwingConstants2")

    jtextarea = model.add_class("javax.swing.JTextArea",
                                extends=["JTextComponent"])
    jtextarea.constructor()
    jtextarea.constructor("String")
    jtextarea.constructor("int", "int")
    jtextarea.constructor("String", "int", "int")
    jtextarea.constructor("Document")
    jtextarea.method("append", ["String"], "void")
    jtextarea.method("getLineCount", [], "int")

    formatter = model.add_class(
        "javax.swing.JFormattedTextField.AbstractFormatter",
        extends=["Object", "Serializable"])
    formatter.method("stringToValue", ["String"], "Object")
    formatter.method("valueToString", ["Object"], "String")

    factory = model.add_class(
        "javax.swing.JFormattedTextField.AbstractFormatterFactory",
        extends=["Object"])
    factory.method("getFormatter", ["JFormattedTextField"],
                   "JFormattedTextField.AbstractFormatter")

    jformatted = model.add_class("javax.swing.JFormattedTextField",
                                 extends=["JTextField"])
    jformatted.constructor()
    jformatted.constructor("JFormattedTextField.AbstractFormatter")
    jformatted.constructor("JFormattedTextField.AbstractFormatterFactory")
    jformatted.constructor("Object")
    jformatted.method("getValue", [], "Object")
    jformatted.method("setValue", ["Object"], "void")
    jformatted.method("getFormatter", [], "JFormattedTextField.AbstractFormatter")

    default_formatter = model.add_class("javax.swing.text.DefaultFormatter",
                                        extends=["JFormattedTextField.AbstractFormatter"])
    default_formatter.constructor()

    mask_formatter = model.add_class("javax.swing.text.MaskFormatter",
                                     extends=["DefaultFormatter"])
    mask_formatter.constructor()
    mask_formatter.constructor("String")

    jeditor = model.add_class("javax.swing.JEditorPane",
                              extends=["JTextComponent"])
    jeditor.constructor()
    jeditor.constructor("String")
    jeditor.constructor("String", "String")


def _build_containers(model: ApiModel) -> None:
    jwindow = model.add_class("javax.swing.JWindow",
                              extends=["Window", "Accessible",
                                       "RootPaneContainer"])
    jwindow.constructor()
    jwindow.constructor("Frame")
    jwindow.method("getContentPane", [], "Container")

    model.add_class("javax.swing.RootPaneContainer")

    jframe = model.add_class("javax.swing.JFrame",
                             extends=["Frame", "Accessible",
                                      "RootPaneContainer"])
    jframe.constructor()
    jframe.constructor("String")
    jframe.method("getContentPane", [], "Container")
    jframe.method("setDefaultCloseOperation", ["int"], "void")

    jdialog = model.add_class("javax.swing.JDialog",
                              extends=["Dialog", "Accessible",
                                       "RootPaneContainer"])
    jdialog.constructor()
    jdialog.constructor("Frame")
    jdialog.constructor("Frame", "String")

    jscroll = model.add_class("javax.swing.JScrollPane",
                              extends=["JComponent", "Accessible"])
    jscroll.constructor()
    jscroll.constructor("Component")
    jscroll.method("getViewport", [], "JViewport")
    jscroll.method("setViewportView", ["Component"], "void")

    jviewport = model.add_class("javax.swing.JViewport",
                                extends=["JComponent", "Accessible"])
    jviewport.constructor()
    jviewport.method("getView", [], "Component")
    jviewport.method("setView", ["Component"], "void")
    jviewport.method("getViewPosition", [], "Point")

    jsplit = model.add_class("javax.swing.JSplitPane",
                             extends=["JComponent", "Accessible"])
    jsplit.constructor()
    jsplit.constructor("int")
    jsplit.constructor("int", "Component", "Component")

    jtabbed = model.add_class("javax.swing.JTabbedPane",
                              extends=["JComponent", "Accessible"])
    jtabbed.constructor()
    jtabbed.method("addTab", ["String", "Component"], "void")

    jtoolbar = model.add_class("javax.swing.JToolBar",
                               extends=["JComponent", "Accessible"])
    jtoolbar.constructor()
    jtoolbar.constructor("String")

    group_layout = model.add_class("javax.swing.GroupLayout",
                                   extends=["Object", "LayoutManager2"])
    group_layout.constructor("Container")
    group_layout.method("setAutoCreateGaps", ["boolean"], "void")
    group_layout.method("setAutoCreateContainerGaps", ["boolean"], "void")

    spring_layout = model.add_class("javax.swing.SpringLayout",
                                    extends=["Object", "LayoutManager2"])
    spring_layout.constructor()

    box_layout = model.add_class("javax.swing.BoxLayout",
                                 extends=["Object", "LayoutManager2"])
    box_layout.constructor("Container", "int")

    overlay_layout = model.add_class("javax.swing.OverlayLayout",
                                     extends=["Object", "LayoutManager2"])
    overlay_layout.constructor("Container")


def _build_models(model: ApiModel) -> None:
    bounded = model.add_class("javax.swing.BoundedRangeModel")
    bounded.method("getValue", [], "int")
    bounded.method("setValue", ["int"], "void")
    bounded.method("getMinimum", [], "int")
    bounded.method("getMaximum", [], "int")

    default_bounded = model.add_class("javax.swing.DefaultBoundedRangeModel",
                                      extends=["Object", "BoundedRangeModel",
                                               "Serializable"])
    default_bounded.constructor()
    default_bounded.constructor("int", "int", "int", "int")

    jtable = model.add_class("javax.swing.JTable",
                             extends=["JComponent", "Accessible", "Scrollable"])
    jtable.constructor()
    jtable.constructor("int", "int")
    jtable.constructor("TableModel")
    jtable.constructor("ObjectArray2D", "ObjectArray")
    jtable.method("getRowCount", [], "int")
    jtable.method("getColumnCount", [], "int")
    jtable.method("getModel", [], "TableModel")
    jtable.method("getValueAt", ["int", "int"], "Object")

    model.add_class("javax.swing.table.TableModel")
    model.add_class("javax.swing.Scrollable")

    default_table = model.add_class("javax.swing.table.DefaultTableModel",
                                    extends=["Object", "TableModel",
                                             "Serializable"])
    default_table.constructor()
    default_table.constructor("int", "int")
    default_table.constructor("ObjectArray2D", "ObjectArray")

    jtree = model.add_class("javax.swing.JTree",
                            extends=["JComponent", "Accessible", "Scrollable2"])
    jtree.constructor()
    jtree.constructor("TreeModel")
    jtree.constructor("TreeNode")
    jtree.method("getModel", [], "TreeModel")
    jtree.method("getRowCount", [], "int")

    model.add_class("javax.swing.Scrollable2")
    model.add_class("javax.swing.tree.TreeModel")
    model.add_class("javax.swing.tree.TreeNode")

    default_tree_node = model.add_class(
        "javax.swing.tree.DefaultMutableTreeNode",
        extends=["Object", "TreeNode", "Cloneable"])
    default_tree_node.constructor()
    default_tree_node.constructor("Object")

    jlist = model.add_class("javax.swing.JList",
                            extends=["JComponent", "Accessible", "Scrollable3"])
    jlist.constructor()
    jlist.constructor("ListModel")
    jlist.constructor("ObjectArray")
    jlist.method("getSelectedIndex", [], "int")

    model.add_class("javax.swing.Scrollable3")
    model.add_class("javax.swing.ListModel")

    jcombo = model.add_class("javax.swing.JComboBox",
                             extends=["JComponent", "ItemSelectable2",
                                      "Accessible"])
    jcombo.constructor()
    jcombo.constructor("ObjectArray")
    jcombo.method("getSelectedItem", [], "Object")

    model.add_class("javax.swing.ItemSelectable2")

    jslider = model.add_class("javax.swing.JSlider",
                              extends=["JComponent", "SwingConstants3",
                                       "Accessible"])
    jslider.constructor()
    jslider.constructor("int", "int")
    jslider.constructor("int", "int", "int")
    jslider.constructor("BoundedRangeModel")
    jslider.method("getValue", [], "int")

    model.add_class("javax.swing.SwingConstants3")

    jprogress = model.add_class("javax.swing.JProgressBar",
                                extends=["JComponent", "SwingConstants4",
                                         "Accessible"])
    jprogress.constructor()
    jprogress.constructor("int", "int")
    jprogress.constructor("BoundedRangeModel")

    model.add_class("javax.swing.SwingConstants4")

    jspinner = model.add_class("javax.swing.JSpinner",
                               extends=["JComponent", "Accessible"])
    jspinner.constructor()
    jspinner.method("getValue", [], "Object")


def _build_misc(model: ApiModel) -> None:
    timer = model.add_class("javax.swing.Timer",
                            extends=["Object", "Serializable"])
    timer.constructor("int", "ActionListener")
    timer.method("start", [], "void")
    timer.method("stop", [], "void")
    timer.method("isRunning", [], "boolean")
    timer.method("setDelay", ["int"], "void")

    transfer = model.add_class("javax.swing.TransferHandler",
                               extends=["Object", "Serializable"])
    transfer.constructor("String")
    transfer.method("exportToClipboard", ["JComponent", "Clipboard", "int"],
                    "void")

    model.add_class("java.awt.datatransfer.Clipboard", extends=["Object"]) \
        .constructor("String") \
        .method("getName", [], "String")

    image_icon = model.add_class("javax.swing.ImageIcon",
                                 extends=["Object", "Icon", "Serializable"])
    image_icon.constructor()
    image_icon.constructor("String")
    image_icon.constructor("String", "String")
    image_icon.constructor("Image")
    image_icon.constructor("URL")
    image_icon.method("getImage", [], "Image")
    image_icon.method("getIconWidth", [], "int")

    border_factory = model.add_class("javax.swing.BorderFactory",
                                     extends=["Object"])
    border_factory.method("createEmptyBorder", [], "Border", static=True)
    border_factory.method("createLineBorder", ["Color"], "Border", static=True)
    border_factory.method("createTitledBorder", ["String"], "Border",
                          static=True)

    joptionpane = model.add_class("javax.swing.JOptionPane",
                                  extends=["JComponent", "Accessible"])
    joptionpane.constructor()
    joptionpane.method("showMessageDialog", ["Component", "Object"], "void",
                       static=True)
    joptionpane.method("showInputDialog", ["Object"], "String", static=True)

    swing_utilities = model.add_class("javax.swing.SwingUtilities",
                                      extends=["Object"])
    swing_utilities.method("invokeLater", ["Runnable"], "void", static=True)
    swing_utilities.method("isEventDispatchThread", [], "boolean", static=True)

    ui_manager = model.add_class("javax.swing.UIManager", extends=["Object"])
    ui_manager.method("getLookAndFeel", [], "String", static=True)
    ui_manager.method("setLookAndFeel", ["String"], "void", static=True)
