"""java.lang — core types every scene imports implicitly."""

from repro.javamodel.model import ApiModel


def build(model: ApiModel) -> None:
    obj = model.add_class("java.lang.Object")
    obj.constructor()
    obj.method("toString", [], "String")
    obj.method("hashCode", [], "int")
    obj.method("equals", ["Object"], "boolean")
    obj.method("getClass", [], "Class")

    cls = model.add_class("java.lang.Class", extends=["Object"])
    cls.method("getName", [], "String")
    cls.method("getSimpleName", [], "String")

    string = model.add_class("java.lang.String", extends=["Object", "CharSequence"])
    string.constructor()
    string.constructor("CharArray")
    string.constructor("ByteArray")
    string.method("length", [], "int")
    string.method("charAt", ["int"], "char")
    string.method("substring", ["int"], "String")
    string.method("concat", ["String"], "String")
    string.method("trim", [], "String")
    string.method("toUpperCase", [], "String")
    string.method("toLowerCase", [], "String")
    string.method("getBytes", [], "ByteArray")
    string.method("toCharArray", [], "CharArray")
    string.method("indexOf", ["String"], "int")
    string.method("replace", ["CharSequence", "CharSequence"], "String")
    string.method("valueOf", ["int"], "String", static=True)
    string.method("isEmpty", [], "boolean")

    model.add_class("java.lang.CharSequence")

    builder = model.add_class("java.lang.StringBuilder",
                              extends=["Object", "CharSequence"])
    builder.constructor()
    builder.constructor("String")
    builder.constructor("int")
    builder.method("append", ["String"], "StringBuilder")
    builder.method("reverse", [], "StringBuilder")
    builder.method("toString", [], "String")

    buffer = model.add_class("java.lang.StringBuffer",
                             extends=["Object", "CharSequence"])
    buffer.constructor()
    buffer.constructor("String")
    buffer.method("append", ["String"], "StringBuffer")

    integer = model.add_class("java.lang.Integer", extends=["Number"])
    integer.constructor("int")
    integer.method("intValue", [], "int")
    integer.method("parseInt", ["String"], "int", static=True)
    integer.method("toBinaryString", ["int"], "String", static=True)
    integer.field("MAX_VALUE", "int", static=True)
    integer.field("MIN_VALUE", "int", static=True)

    long_ = model.add_class("java.lang.Long", extends=["Number"])
    long_.constructor("long")
    long_.method("longValue", [], "long")
    long_.method("parseLong", ["String"], "long", static=True)

    double_ = model.add_class("java.lang.Double", extends=["Number"])
    double_.constructor("double")
    double_.method("doubleValue", [], "double")
    double_.method("parseDouble", ["String"], "double", static=True)

    model.add_class("java.lang.Number", extends=["Object"])

    boolean = model.add_class("java.lang.Boolean", extends=["Object"])
    boolean.constructor("boolean")
    boolean.method("booleanValue", [], "boolean")
    boolean.method("parseBoolean", ["String"], "boolean", static=True)

    character = model.add_class("java.lang.Character", extends=["Object"])
    character.constructor("char")
    character.method("charValue", [], "char")

    system = model.add_class("java.lang.System", extends=["Object"])
    system.field("out", "PrintStream", static=True)
    system.field("err", "PrintStream", static=True)
    system.field("in", "InputStream", static=True)
    system.method("currentTimeMillis", [], "long", static=True)
    system.method("getProperty", ["String"], "String", static=True)
    system.method("lineSeparator", [], "String", static=True)

    math = model.add_class("java.lang.Math", extends=["Object"])
    math.method("abs", ["int"], "int", static=True)
    math.method("max", ["int", "int"], "int", static=True)
    math.method("min", ["int", "int"], "int", static=True)
    math.method("random", [], "double", static=True)
    math.field("PI", "double", static=True)

    runnable = model.add_class("java.lang.Runnable")
    runnable.method("run", [], "void")

    thread = model.add_class("java.lang.Thread", extends=["Object", "Runnable"])
    thread.constructor()
    thread.constructor("Runnable")
    thread.constructor("Runnable", "String")
    thread.method("start", [], "void")
    thread.method("getName", [], "String")
    thread.method("currentThread", [], "Thread", static=True)

    throwable = model.add_class("java.lang.Throwable", extends=["Object"])
    throwable.constructor("String")
    throwable.method("getMessage", [], "String")

    exception = model.add_class("java.lang.Exception", extends=["Throwable"])
    exception.constructor("String")

    runtime_exception = model.add_class("java.lang.RuntimeException",
                                        extends=["Exception"])
    runtime_exception.constructor("String")

    model.add_class("java.lang.IllegalArgumentException",
                    extends=["RuntimeException"]).constructor("String")

    runtime = model.add_class("java.lang.Runtime", extends=["Object"])
    runtime.method("getRuntime", [], "Runtime", static=True)
    runtime.method("availableProcessors", [], "int")

    process = model.add_class("java.lang.Process", extends=["Object"])
    process.method("getInputStream", [], "InputStream")
    process.method("getOutputStream", [], "OutputStream")
    process.method("waitFor", [], "int")
