"""A slice of the Scala standard library — higher-order API surface.

The paper's tool ran inside the Scala IDE, where much of the visible API
is higher-order (`List.map`, `Option.getOrElse`, `foreach`, ...).  The
simply typed calculus is monomorphic, so the generic signatures are
modelled at the instantiations the examples use (`TreeList`, `StringList`,
`IntList`, `StringOption`), which is how the presentation compiler
would materialise them at a concrete call site anyway.

Kept out of :func:`repro.javamodel.jdk.build_jdk` (the Table 2 scenes are
Java-API scenes); scenes opt in via ``build`` on their own model.
"""

from repro.javamodel.model import ApiModel


def build(model: ApiModel) -> None:
    _build_lists(model)
    _build_options(model)
    _build_functions(model)


def _build_lists(model: ApiModel) -> None:
    model.add_class("scala.Int2")          # marker types for the slice
    model.add_class("scala.Boolean3")

    string_list = model.add_class("scala.collection.StringList")
    string_list.method("map", ["String -> String"], "StringList")
    string_list.method("filter", ["String -> boolean"], "StringList")
    string_list.method("foldLeft", ["String", "String -> String -> String"],
                       "String")
    string_list.method("headOption", [], "StringOption")
    string_list.method("mkString", ["String"], "String")
    string_list.method("size", [], "int")
    string_list.method("isEmpty", [], "boolean")
    string_list.method("reverse", [], "StringList")
    string_list.method("empty", [], "StringList", static=True)

    int_list = model.add_class("scala.collection.IntList")
    int_list.method("map", ["int -> int"], "IntList")
    int_list.method("filter", ["int -> boolean"], "IntList")
    int_list.method("foldLeft", ["int", "int -> int -> int"], "int")
    int_list.method("sum", [], "int")
    int_list.method("max", [], "int")
    int_list.method("take", ["int"], "IntList")
    int_list.method("range", ["int", "int"], "IntList", static=True)

    model.add_class("scala.collection.ListBuffer") \
        .constructor() \
        .method("append", ["String"], "ListBuffer") \
        .method("toStringList", [], "StringList")


def _build_options(model: ApiModel) -> None:
    option = model.add_class("scala.StringOption")
    option.method("get", [], "String")
    option.method("getOrElse", ["String"], "String")
    option.method("isDefined", [], "boolean")
    option.method("map", ["String -> String"], "StringOption")
    option.method("some", ["String"], "StringOption", static=True)
    option.method("none", [], "StringOption", static=True)


def _build_functions(model: ApiModel) -> None:
    predef = model.add_class("scala.Predef")
    predef.method("identity", ["String"], "String", static=True)
    predef.method("require", ["boolean"], "Unit2", static=True)
    model.add_class("scala.Unit2")

    compose = model.add_class("scala.FunctionOps")
    compose.method("compose",
                   ["String -> String", "String -> String"],
                   "String -> String", static=True)
    compose.method("andThen",
                   ["String -> String", "String -> String"],
                   "String -> String", static=True)
    compose.method("constantly", ["String"], "String -> String",
                   static=True)
