"""java.io — the stream, reader and writer hierarchies.

The richest package in the model: most Table 2 benchmarks are java.io
construction tasks (``new BufferedReader(new FileReader(file))``-style).
Subtype edges mirror the real hierarchy so the §6 coercion machinery is
exercised exactly as in the paper's examples.
"""

from repro.javamodel.model import ApiModel


def build(model: ApiModel) -> None:
    _build_streams(model)
    _build_readers_writers(model)
    _build_files(model)
    _build_misc(model)


def _build_streams(model: ApiModel) -> None:
    input_stream = model.add_class("java.io.InputStream", extends=["Object", "Closeable"])
    input_stream.method("read", [], "int")
    input_stream.method("available", [], "int")
    input_stream.method("close", [], "void")
    input_stream.method("markSupported", [], "boolean")

    output_stream = model.add_class("java.io.OutputStream", extends=["Object", "Closeable"])
    output_stream.method("write", ["int"], "void")
    output_stream.method("flush", [], "void")
    output_stream.method("close", [], "void")

    file_input = model.add_class("java.io.FileInputStream", extends=["InputStream"])
    file_input.constructor("String")
    file_input.constructor("File")
    file_input.constructor("FileDescriptor")
    file_input.method("getFD", [], "FileDescriptor")
    file_input.method("getChannel", [], "FileChannel")

    file_output = model.add_class("java.io.FileOutputStream", extends=["OutputStream"])
    file_output.constructor("String")
    file_output.constructor("File")
    file_output.constructor("File", "boolean")
    file_output.constructor("FileDescriptor")
    file_output.method("getFD", [], "FileDescriptor")

    filter_input = model.add_class("java.io.FilterInputStream", extends=["InputStream"])
    filter_input.constructor("InputStream")

    filter_output = model.add_class("java.io.FilterOutputStream", extends=["OutputStream"])
    filter_output.constructor("OutputStream")

    buffered_input = model.add_class("java.io.BufferedInputStream",
                                     extends=["FilterInputStream"])
    buffered_input.constructor("InputStream")
    buffered_input.constructor("InputStream", "int")

    buffered_output = model.add_class("java.io.BufferedOutputStream",
                                      extends=["FilterOutputStream"])
    buffered_output.constructor("OutputStream")
    buffered_output.constructor("OutputStream", "int")

    data_input = model.add_class("java.io.DataInputStream",
                                 extends=["FilterInputStream", "DataInput"])
    data_input.constructor("InputStream")
    data_input.method("readInt", [], "int")
    data_input.method("readUTF", [], "String")
    data_input.method("readBoolean", [], "boolean")

    data_output = model.add_class("java.io.DataOutputStream",
                                  extends=["FilterOutputStream", "DataOutput"])
    data_output.constructor("OutputStream")
    data_output.method("writeInt", ["int"], "void")
    data_output.method("writeUTF", ["String"], "void")
    data_output.method("size", [], "int")

    byte_array_input = model.add_class("java.io.ByteArrayInputStream",
                                       extends=["InputStream"])
    byte_array_input.constructor("ByteArray")
    byte_array_input.constructor("ByteArray", "int", "int")

    byte_array_output = model.add_class("java.io.ByteArrayOutputStream",
                                        extends=["OutputStream"])
    byte_array_output.constructor()
    byte_array_output.constructor("int")
    byte_array_output.method("toByteArray", [], "ByteArray")
    byte_array_output.method("toString", [], "String")
    byte_array_output.method("size", [], "int")

    sequence_input = model.add_class("java.io.SequenceInputStream",
                                     extends=["InputStream"])
    sequence_input.constructor("InputStream", "InputStream")
    sequence_input.constructor("Enumeration")

    object_input = model.add_class("java.io.ObjectInputStream",
                                   extends=["InputStream", "ObjectInput"])
    object_input.constructor("InputStream")
    object_input.method("readObject", [], "Object")

    object_output = model.add_class("java.io.ObjectOutputStream",
                                    extends=["OutputStream", "ObjectOutput"])
    object_output.constructor("OutputStream")
    object_output.method("writeObject", ["Object"], "void")

    piped_input = model.add_class("java.io.PipedInputStream", extends=["InputStream"])
    piped_input.constructor()
    piped_input.constructor("PipedOutputStream")

    piped_output = model.add_class("java.io.PipedOutputStream", extends=["OutputStream"])
    piped_output.constructor()
    piped_output.constructor("PipedInputStream")

    print_stream = model.add_class("java.io.PrintStream",
                                   extends=["FilterOutputStream", "Appendable"])
    print_stream.constructor("OutputStream")
    print_stream.constructor("OutputStream", "boolean")
    print_stream.constructor("String")
    print_stream.constructor("File")
    print_stream.method("println", ["String"], "void")
    print_stream.method("print", ["String"], "void")
    print_stream.method("printf", ["String", "Object"], "PrintStream")
    print_stream.method("checkError", [], "boolean")

    pushback_input = model.add_class("java.io.PushbackInputStream",
                                     extends=["FilterInputStream"])
    pushback_input.constructor("InputStream")
    pushback_input.constructor("InputStream", "int")

    model.add_class("java.io.Closeable")
    model.add_class("java.io.Flushable")
    model.add_class("java.io.DataInput")
    model.add_class("java.io.DataOutput")
    model.add_class("java.io.ObjectInput", extends=["DataInput"])
    model.add_class("java.io.ObjectOutput", extends=["DataOutput"])
    model.add_class("java.io.Serializable")


def _build_readers_writers(model: ApiModel) -> None:
    reader = model.add_class("java.io.Reader", extends=["Object", "Readable", "Closeable"])
    reader.method("read", [], "int")
    reader.method("ready", [], "boolean")
    reader.method("close", [], "void")

    writer = model.add_class("java.io.Writer",
                             extends=["Object", "Appendable", "Closeable", "Flushable"])
    writer.method("write", ["String"], "void")
    writer.method("flush", [], "void")
    writer.method("close", [], "void")
    writer.method("append", ["CharSequence"], "Writer")

    model.add_class("java.lang.Readable")
    model.add_class("java.lang.Appendable")

    input_stream_reader = model.add_class("java.io.InputStreamReader",
                                          extends=["Reader"])
    input_stream_reader.constructor("InputStream")
    input_stream_reader.constructor("InputStream", "String")
    input_stream_reader.constructor("InputStream", "Charset")
    input_stream_reader.method("getEncoding", [], "String")

    output_stream_writer = model.add_class("java.io.OutputStreamWriter",
                                           extends=["Writer"])
    output_stream_writer.constructor("OutputStream")
    output_stream_writer.constructor("OutputStream", "String")
    output_stream_writer.method("getEncoding", [], "String")

    file_reader = model.add_class("java.io.FileReader",
                                  extends=["InputStreamReader"])
    file_reader.constructor("File")
    file_reader.constructor("String")
    file_reader.constructor("FileDescriptor")

    file_writer = model.add_class("java.io.FileWriter",
                                  extends=["OutputStreamWriter"])
    file_writer.constructor("File")
    file_writer.constructor("String")
    file_writer.constructor("String", "boolean")
    file_writer.constructor("File", "boolean")

    buffered_reader = model.add_class("java.io.BufferedReader", extends=["Reader"])
    buffered_reader.constructor("Reader")
    buffered_reader.constructor("Reader", "int")
    buffered_reader.method("readLine", [], "String")

    buffered_writer = model.add_class("java.io.BufferedWriter", extends=["Writer"])
    buffered_writer.constructor("Writer")
    buffered_writer.constructor("Writer", "int")
    buffered_writer.method("newLine", [], "void")

    line_number_reader = model.add_class("java.io.LineNumberReader",
                                         extends=["BufferedReader"])
    line_number_reader.constructor("Reader")
    line_number_reader.constructor("Reader", "int")
    line_number_reader.method("getLineNumber", [], "int")
    line_number_reader.method("setLineNumber", ["int"], "void")

    string_reader = model.add_class("java.io.StringReader", extends=["Reader"])
    string_reader.constructor("String")

    string_writer = model.add_class("java.io.StringWriter", extends=["Writer"])
    string_writer.constructor()
    string_writer.constructor("int")
    string_writer.method("getBuffer", [], "StringBuffer")

    char_array_reader = model.add_class("java.io.CharArrayReader", extends=["Reader"])
    char_array_reader.constructor("CharArray")

    char_array_writer = model.add_class("java.io.CharArrayWriter", extends=["Writer"])
    char_array_writer.constructor()
    char_array_writer.method("toCharArray", [], "CharArray")

    piped_reader = model.add_class("java.io.PipedReader", extends=["Reader"])
    piped_reader.constructor()
    piped_reader.constructor("PipedWriter")
    piped_reader.constructor("PipedWriter", "int")

    piped_writer = model.add_class("java.io.PipedWriter", extends=["Writer"])
    piped_writer.constructor()
    piped_writer.constructor("PipedReader")

    print_writer = model.add_class("java.io.PrintWriter", extends=["Writer"])
    print_writer.constructor("Writer")
    print_writer.constructor("Writer", "boolean")
    print_writer.constructor("OutputStream")
    print_writer.constructor("String")
    print_writer.constructor("File")
    print_writer.method("println", ["String"], "void")
    print_writer.method("printf", ["String", "Object"], "PrintWriter")

    pushback_reader = model.add_class("java.io.PushbackReader", extends=["FilterReader"])
    pushback_reader.constructor("Reader")
    pushback_reader.constructor("Reader", "int")
    pushback_reader.method("unread", ["int"], "void")

    filter_reader = model.add_class("java.io.FilterReader", extends=["Reader"])
    filter_reader.constructor("Reader")

    filter_writer = model.add_class("java.io.FilterWriter", extends=["Writer"])
    filter_writer.constructor("Writer")


def _build_files(model: ApiModel) -> None:
    file = model.add_class("java.io.File", extends=["Object", "Serializable"])
    file.constructor("String")
    file.constructor("String", "String")
    file.constructor("File", "String")
    file.constructor("URI")
    file.method("getName", [], "String")
    file.method("getPath", [], "String")
    file.method("getAbsolutePath", [], "String")
    file.method("getParent", [], "String")
    file.method("getParentFile", [], "File")
    file.method("exists", [], "boolean")
    file.method("isDirectory", [], "boolean")
    file.method("isFile", [], "boolean")
    file.method("length", [], "long")
    file.method("delete", [], "boolean")
    file.method("mkdir", [], "boolean")
    file.method("createNewFile", [], "boolean")
    file.method("listFiles", [], "FileArray")
    file.method("toURI", [], "URI")
    file.field("separator", "String", static=True)
    file.field("pathSeparator", "String", static=True)

    descriptor = model.add_class("java.io.FileDescriptor", extends=["Object"])
    descriptor.constructor()
    descriptor.method("valid", [], "boolean")
    descriptor.method("sync", [], "void")
    descriptor.field("in", "FileDescriptor", static=True)
    descriptor.field("out", "FileDescriptor", static=True)
    descriptor.field("err", "FileDescriptor", static=True)

    raf = model.add_class("java.io.RandomAccessFile",
                          extends=["Object", "DataInput", "DataOutput"])
    raf.constructor("String", "String")
    raf.constructor("File", "String")
    raf.method("seek", ["long"], "void")
    raf.method("getFilePointer", [], "long")
    raf.method("readLine", [], "String")

    model.add_class("java.nio.channels.FileChannel", extends=["Object"])
    model.add_class("java.nio.charset.Charset", extends=["Object"]) \
        .method("forName", ["String"], "Charset", static=True) \
        .method("defaultCharset", [], "Charset", static=True)


def _build_misc(model: ApiModel) -> None:
    tokenizer = model.add_class("java.io.StreamTokenizer", extends=["Object"])
    tokenizer.constructor("Reader")
    tokenizer.method("nextToken", [], "int")
    tokenizer.method("lineno", [], "int")
    tokenizer.field("sval", "String")
    tokenizer.field("nval", "double")

    console = model.add_class("java.io.Console", extends=["Object"])
    console.method("readLine", [], "String")
    console.method("writer", [], "PrintWriter")
    console.method("reader", [], "Reader")

    model.add_class("java.io.IOException", extends=["Exception"]) \
        .constructor("String")
    model.add_class("java.io.FileNotFoundException", extends=["IOException"]) \
        .constructor("String")
