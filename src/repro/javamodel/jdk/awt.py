"""java.awt — components, containers, layout managers, geometry."""

from repro.javamodel.model import ApiModel


def build(model: ApiModel) -> None:
    _build_components(model)
    _build_layouts(model)
    _build_geometry(model)
    _build_misc(model)


def _build_components(model: ApiModel) -> None:
    component = model.add_class("java.awt.Component",
                                extends=["Object", "ImageObserver"])
    component.method("getSize", [], "Dimension")
    component.method("setSize", ["Dimension"], "void")
    component.method("getLocation", [], "Point")
    component.method("setLocation", ["Point"], "void")
    component.method("getBounds", [], "Rectangle")
    component.method("setVisible", ["boolean"], "void")
    component.method("isVisible", [], "boolean")
    component.method("getBackground", [], "Color")
    component.method("setBackground", ["Color"], "void")
    component.method("getForeground", [], "Color")
    component.method("getFont", [], "Font")
    component.method("setFont", ["Font"], "void")
    component.method("getGraphics", [], "Graphics")
    component.method("repaint", [], "void")
    component.method("getName", [], "String")
    component.method("getParent", [], "Container")
    component.method("getToolkit", [], "Toolkit")

    container = model.add_class("java.awt.Container", extends=["Component"])
    container.constructor()
    container.method("add", ["Component"], "Component")
    container.method("remove", ["Component"], "void")
    container.method("getLayout", [], "LayoutManager")
    container.method("setLayout", ["LayoutManager"], "void")
    container.method("getComponentCount", [], "int")
    container.method("getComponent", ["int"], "Component")
    container.method("getInsets", [], "Insets")

    panel = model.add_class("java.awt.Panel",
                            extends=["Container", "Accessible"])
    panel.constructor()
    panel.constructor("LayoutManager")

    window = model.add_class("java.awt.Window",
                             extends=["Container", "Accessible"])
    window.constructor("Frame")
    window.method("pack", [], "void")
    window.method("dispose", [], "void")
    window.method("toFront", [], "void")

    frame = model.add_class("java.awt.Frame", extends=["Window", "MenuContainer"])
    frame.constructor()
    frame.constructor("String")
    frame.method("getTitle", [], "String")
    frame.method("setTitle", ["String"], "void")
    frame.method("setMenuBar", ["MenuBar"], "void")

    dialog = model.add_class("java.awt.Dialog", extends=["Window"])
    dialog.constructor("Frame")
    dialog.constructor("Frame", "String")

    button = model.add_class("java.awt.Button", extends=["Component", "Accessible"])
    button.constructor()
    button.constructor("String")
    button.method("getLabel", [], "String")
    button.method("addActionListener", ["ActionListener"], "void")

    canvas = model.add_class("java.awt.Canvas", extends=["Component", "Accessible"])
    canvas.constructor()

    checkbox = model.add_class("java.awt.Checkbox", extends=["Component", "Accessible"])
    checkbox.constructor()
    checkbox.constructor("String")
    checkbox.constructor("String", "boolean")
    checkbox.method("getState", [], "boolean")

    label = model.add_class("java.awt.Label", extends=["Component", "Accessible"])
    label.constructor()
    label.constructor("String")
    label.constructor("String", "int")
    label.method("getText", [], "String")
    label.method("setText", ["String"], "void")

    text_component = model.add_class("java.awt.TextComponent", extends=["Component"])
    text_component.method("getText", [], "String")
    text_component.method("setText", ["String"], "void")

    text_field = model.add_class("java.awt.TextField",
                                 extends=["TextComponent", "Accessible"])
    text_field.constructor()
    text_field.constructor("String")
    text_field.constructor("String", "int")
    text_field.constructor("int")

    text_area = model.add_class("java.awt.TextArea",
                                extends=["TextComponent", "Accessible"])
    text_area.constructor()
    text_area.constructor("String")
    text_area.constructor("String", "int", "int")

    scroll_pane = model.add_class("java.awt.ScrollPane", extends=["Container"])
    scroll_pane.constructor()
    scroll_pane.constructor("int")

    model.add_class("java.awt.MenuContainer")
    menubar = model.add_class("java.awt.MenuBar",
                              extends=["Object", "MenuContainer"])
    menubar.constructor()
    menubar.method("add", ["Menu"], "Menu")

    menu = model.add_class("java.awt.Menu", extends=["MenuItem", "MenuContainer"])
    menu.constructor()
    menu.constructor("String")

    menu_item = model.add_class("java.awt.MenuItem", extends=["Object", "Accessible"])
    menu_item.constructor("String")
    menu_item.method("getLabel", [], "String")

    model.add_class("javax.accessibility.Accessible")
    model.add_class("java.awt.image.ImageObserver")


def _build_layouts(model: ApiModel) -> None:
    model.add_class("java.awt.LayoutManager")
    model.add_class("java.awt.LayoutManager2", extends=["LayoutManager"])

    border = model.add_class("java.awt.BorderLayout",
                             extends=["Object", "LayoutManager2", "Serializable"])
    border.constructor()
    border.constructor("int", "int")
    border.field("NORTH", "String", static=True)
    border.field("SOUTH", "String", static=True)
    border.field("EAST", "String", static=True)
    border.field("WEST", "String", static=True)
    border.field("CENTER", "String", static=True)

    flow = model.add_class("java.awt.FlowLayout",
                           extends=["Object", "LayoutManager", "Serializable"])
    flow.constructor()
    flow.constructor("int")
    flow.constructor("int", "int", "int")
    flow.field("LEFT", "int", static=True)
    flow.field("CENTER_ALIGN", "int", static=True)

    grid = model.add_class("java.awt.GridLayout",
                           extends=["Object", "LayoutManager", "Serializable"])
    grid.constructor()
    grid.constructor("int", "int")
    grid.constructor("int", "int", "int", "int")

    card = model.add_class("java.awt.CardLayout",
                           extends=["Object", "LayoutManager2", "Serializable"])
    card.constructor()
    card.constructor("int", "int")
    card.method("next", ["Container"], "void")

    gridbag = model.add_class("java.awt.GridBagLayout",
                              extends=["Object", "LayoutManager2", "Serializable"])
    gridbag.constructor()
    gridbag.method("setConstraints", ["Component", "GridBagConstraints"], "void")
    gridbag.method("getConstraints", ["Component"], "GridBagConstraints")

    constraints = model.add_class("java.awt.GridBagConstraints",
                                  extends=["Object", "Cloneable", "Serializable"])
    constraints.constructor()
    constraints.field("gridx", "int")
    constraints.field("gridy", "int")
    constraints.field("gridwidth", "int")
    constraints.field("gridheight", "int")
    constraints.field("weightx", "double")
    constraints.field("weighty", "double")
    constraints.field("insets", "Insets")

    model.add_class("java.lang.Cloneable")


def _build_geometry(model: ApiModel) -> None:
    point = model.add_class("java.awt.Point", extends=["Object", "Serializable"])
    point.constructor()
    point.constructor("int", "int")
    point.constructor("Point")
    point.method("getX", [], "double")
    point.method("getY", [], "double")
    point.method("translate", ["int", "int"], "void")
    point.field("x", "int")
    point.field("y", "int")

    dimension = model.add_class("java.awt.Dimension",
                                extends=["Object", "Serializable"])
    dimension.constructor()
    dimension.constructor("int", "int")
    dimension.constructor("Dimension")
    dimension.field("width", "int")
    dimension.field("height", "int")

    rectangle = model.add_class("java.awt.Rectangle",
                                extends=["Object", "Serializable"])
    rectangle.constructor()
    rectangle.constructor("int", "int", "int", "int")
    rectangle.constructor("Point", "Dimension")
    rectangle.constructor("Dimension")
    rectangle.method("contains", ["Point"], "boolean")
    rectangle.method("getSize", [], "Dimension")

    insets = model.add_class("java.awt.Insets", extends=["Object", "Serializable"])
    insets.constructor("int", "int", "int", "int")


def _build_misc(model: ApiModel) -> None:
    color = model.add_class("java.awt.Color", extends=["Object", "Serializable"])
    color.constructor("int", "int", "int")
    color.constructor("int")
    color.method("brighter", [], "Color")
    color.method("darker", [], "Color")
    color.method("getRGB", [], "int")
    color.field("BLACK", "Color", static=True)
    color.field("WHITE", "Color", static=True)
    color.field("RED", "Color", static=True)
    color.field("BLUE", "Color", static=True)
    color.field("GREEN", "Color", static=True)

    font = model.add_class("java.awt.Font", extends=["Object", "Serializable"])
    font.constructor("String", "int", "int")
    font.method("getSize", [], "int")
    font.method("getFamily", [], "String")
    font.method("deriveFont", ["int"], "Font")
    font.field("BOLD", "int", static=True)
    font.field("PLAIN", "int", static=True)

    graphics = model.add_class("java.awt.Graphics", extends=["Object"])
    graphics.method("drawLine", ["int", "int", "int", "int"], "void")
    graphics.method("drawString", ["String", "int", "int"], "void")
    graphics.method("setColor", ["Color"], "void")
    graphics.method("getColor", [], "Color")
    graphics.method("fillRect", ["int", "int", "int", "int"], "void")

    display_mode = model.add_class("java.awt.DisplayMode", extends=["Object"])
    display_mode.constructor("int", "int", "int", "int")
    display_mode.method("getWidth", [], "int")
    display_mode.method("getHeight", [], "int")
    display_mode.method("getBitDepth", [], "int")
    display_mode.method("getRefreshRate", [], "int")

    permission = model.add_class("java.security.Permission",
                                 extends=["Object", "Serializable"])
    permission.method("getName", [], "String")

    basic_permission = model.add_class("java.security.BasicPermission",
                                       extends=["Permission"])

    awt_permission = model.add_class("java.awt.AWTPermission",
                                     extends=["BasicPermission"])
    awt_permission.constructor("String")
    awt_permission.constructor("String", "String")

    toolkit = model.add_class("java.awt.Toolkit", extends=["Object"])
    toolkit.method("getDefaultToolkit", [], "Toolkit", static=True)
    toolkit.method("getScreenSize", [], "Dimension")
    toolkit.method("beep", [], "void")

    cursor = model.add_class("java.awt.Cursor", extends=["Object", "Serializable"])
    cursor.constructor("int")
    cursor.method("getType", [], "int")

    image = model.add_class("java.awt.Image", extends=["Object"])
    image.method("getWidth", ["ImageObserver"], "int")
    image.method("getHeight", ["ImageObserver"], "int")

    graphics_env = model.add_class("java.awt.GraphicsEnvironment", extends=["Object"])
    graphics_env.method("getLocalGraphicsEnvironment", [],
                        "GraphicsEnvironment", static=True)
    graphics_env.method("getDefaultScreenDevice", [], "GraphicsDevice")

    graphics_device = model.add_class("java.awt.GraphicsDevice", extends=["Object"])
    graphics_device.method("getDisplayMode", [], "DisplayMode")
    graphics_device.method("setDisplayMode", ["DisplayMode"], "void")

    model.add_class("java.awt.event.ActionListener") \
        .method("actionPerformed", ["ActionEvent"], "void")
    model.add_class("java.awt.event.ActionEvent", extends=["Object"]) \
        .constructor("Object", "int", "String") \
        .method("getActionCommand", [], "String")
    model.add_class("java.awt.event.KeyListener")
    model.add_class("java.awt.event.MouseListener")
    model.add_class("java.awt.event.WindowListener")
