"""java.net — sockets, URLs and addresses."""

from repro.javamodel.model import ApiModel


def build(model: ApiModel) -> None:
    url = model.add_class("java.net.URL", extends=["Object", "Serializable"])
    url.constructor("String")
    url.constructor("String", "String", "String")
    url.constructor("String", "String", "int", "String")
    url.constructor("URL", "String")
    url.method("openStream", [], "InputStream")
    url.method("openConnection", [], "URLConnection")
    url.method("getHost", [], "String")
    url.method("getPort", [], "int")
    url.method("getProtocol", [], "String")
    url.method("getFile", [], "String")
    url.method("toURI", [], "URI")
    url.method("toExternalForm", [], "String")

    uri = model.add_class("java.net.URI", extends=["Object", "Serializable"])
    uri.constructor("String")
    uri.method("getScheme", [], "String")
    uri.method("getHost", [], "String")
    uri.method("toURL", [], "URL")

    connection = model.add_class("java.net.URLConnection", extends=["Object"])
    connection.method("getInputStream", [], "InputStream")
    connection.method("getOutputStream", [], "OutputStream")
    connection.method("getContentLength", [], "int")
    connection.method("getContentType", [], "String")
    connection.method("connect", [], "void")

    http = model.add_class("java.net.HttpURLConnection", extends=["URLConnection"])
    http.method("getResponseCode", [], "int")
    http.method("setRequestMethod", ["String"], "void")
    http.method("disconnect", [], "void")

    socket = model.add_class("java.net.Socket", extends=["Object", "Closeable"])
    socket.constructor()
    socket.constructor("String", "int")
    socket.constructor("InetAddress", "int")
    socket.method("getInputStream", [], "InputStream")
    socket.method("getOutputStream", [], "OutputStream")
    socket.method("getInetAddress", [], "InetAddress")
    socket.method("getPort", [], "int")
    socket.method("close", [], "void")
    socket.method("isConnected", [], "boolean")

    server = model.add_class("java.net.ServerSocket", extends=["Object", "Closeable"])
    server.constructor()
    server.constructor("int")
    server.constructor("int", "int")
    server.method("accept", [], "Socket")
    server.method("getLocalPort", [], "int")
    server.method("close", [], "void")

    datagram_socket = model.add_class("java.net.DatagramSocket",
                                      extends=["Object", "Closeable"])
    datagram_socket.constructor()
    datagram_socket.constructor("int")
    datagram_socket.constructor("int", "InetAddress")
    datagram_socket.method("send", ["DatagramPacket"], "void")
    datagram_socket.method("receive", ["DatagramPacket"], "void")
    datagram_socket.method("getLocalPort", [], "int")
    datagram_socket.method("close", [], "void")

    multicast = model.add_class("java.net.MulticastSocket",
                                extends=["DatagramSocket"])
    multicast.constructor()
    multicast.constructor("int")
    multicast.method("joinGroup", ["InetAddress"], "void")

    packet = model.add_class("java.net.DatagramPacket", extends=["Object"])
    packet.constructor("ByteArray", "int")
    packet.constructor("ByteArray", "int", "InetAddress", "int")
    packet.method("getData", [], "ByteArray")
    packet.method("getLength", [], "int")
    packet.method("getAddress", [], "InetAddress")

    address = model.add_class("java.net.InetAddress", extends=["Object"])
    address.method("getByName", ["String"], "InetAddress", static=True)
    address.method("getLocalHost", [], "InetAddress", static=True)
    address.method("getHostName", [], "String")
    address.method("getHostAddress", [], "String")

    model.add_class("java.net.InetSocketAddress", extends=["Object"]) \
        .constructor("String", "int") \
        .constructor("int")

    model.add_class("java.net.URLEncoder", extends=["Object"]) \
        .method("encode", ["String", "String"], "String", static=True)
    model.add_class("java.net.URLDecoder", extends=["Object"]) \
        .method("decode", ["String", "String"], "String", static=True)

    model.add_class("java.net.MalformedURLException", extends=["IOException"]) \
        .constructor("String")
    model.add_class("java.net.UnknownHostException", extends=["IOException"]) \
        .constructor("String")
