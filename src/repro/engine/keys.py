"""Cache keys for engine-served synthesis results.

A result is reusable exactly when everything that can influence it is
unchanged: the prepared environment (declarations *and* their order, plus
the coercions induced by subtyping — all captured by the environment
fingerprint), the goal type, the weight policy, and the synthesis budgets.
:func:`query_key` folds those into one frozen, hashable :class:`QueryKey`.

Policies and configs are frozen dataclasses, so their field tuples are
stable fingerprints; ``max_snippets`` is replaced by the effective request
limit ``n`` so ``synthesize(goal, n=3)`` and ``n=10`` never share an entry.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

from repro.core.config import SynthesisConfig
from repro.core.types import Type
from repro.core.weights import WeightPolicy


def policy_key(policy: WeightPolicy) -> tuple:
    """A stable value tuple identifying a weight policy."""
    return tuple(getattr(policy, field.name) for field in fields(policy))


def config_key(config: SynthesisConfig, n: Optional[int] = None) -> tuple:
    """A stable value tuple identifying the budgets of one query.

    ``n`` (the per-call snippet limit) overrides ``config.max_snippets``,
    mirroring :meth:`repro.core.synthesizer.Synthesizer.synthesize`.
    """
    limit = n if n is not None else config.max_snippets
    values = []
    for field in fields(config):
        if field.name == "max_snippets":
            values.append(limit)
        else:
            values.append(getattr(config, field.name))
    return tuple(values)


@dataclass(frozen=True)
class QueryKey:
    """The full identity of one synthesis query."""

    environment_fingerprint: str
    goal: str
    policy: tuple
    budgets: tuple


def query_key(environment_fingerprint: str, goal: Type,
              policy: WeightPolicy, config: SynthesisConfig,
              n: Optional[int] = None) -> QueryKey:
    """Build the cache key for one query against a prepared scene."""
    return QueryKey(
        environment_fingerprint=environment_fingerprint,
        goal=str(goal),
        policy=policy_key(policy),
        budgets=config_key(config, n),
    )
