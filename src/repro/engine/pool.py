"""Order-preserving batch execution, sequential or across processes.

``run_batch(worker, payloads)`` is the engine's fan-out primitive: it
returns ``[worker(p) for p in payloads]`` — same order as the input — but
executes the calls on a process pool when ``max_workers > 1``.  Synthesis
is CPU-bound pure Python, so threads cannot help; processes can, and every
payload/result the engine ships is plain picklable data (environments,
types, terms and results are all dataclasses).

Sandboxes without working multiprocessing primitives (no ``sem_open``, no
fork) are common, so pool construction failures degrade to the sequential
path instead of erroring: parallelism is an optimisation, never a
correctness requirement.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Sequence, TypeVar

Payload = TypeVar("Payload")
Result = TypeVar("Result")


def default_worker_count() -> int:
    """A sensible worker count for this machine (at least 1)."""
    return max(os.cpu_count() or 1, 1)


def run_batch(worker: Callable[[Payload], Result],
              payloads: Sequence[Payload],
              max_workers: int = 1,
              chunksize: Optional[int] = None) -> list[Result]:
    """Apply *worker* to every payload, preserving input order.

    With ``max_workers <= 1`` (or a single payload) this is a plain loop.
    Otherwise payloads are distributed over a process pool; *worker* must
    then be a module-level function and payloads/results picklable.
    """
    if max_workers <= 1 or len(payloads) <= 1:
        return [worker(payload) for payload in payloads]

    try:
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
    except ImportError:
        return [worker(payload) for payload in payloads]
    try:
        workers = min(max_workers, len(payloads))
        if chunksize is None:
            chunksize = max(len(payloads) // (workers * 4), 1)
        with ProcessPoolExecutor(max_workers=workers) as executor:
            return list(executor.map(worker, payloads, chunksize=chunksize))
    except (OSError, PermissionError, BrokenExecutor):
        # Restricted environments: pool construction can fail outright (no
        # semaphores / no fork -> OSError), or construction can succeed and
        # the forked workers then be killed (seccomp/cgroup ->
        # BrokenProcessPool).  Either way the work is pure, so rerun it
        # serially — parallelism is an optimisation, never a requirement.
        return [worker(payload) for payload in payloads]
