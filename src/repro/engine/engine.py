"""The long-lived completion engine: prepare once, answer many.

The paper's pipeline (Fig. 5: Explore -> GenerateP -> GenerateT) is run per
query, but its expensive inputs are per *scene*: the coercion-extended
environment, its succinct signature, and the interned succinct types.  A
:class:`CompletionEngine` separates the two lifetimes:

* :meth:`~CompletionEngine.prepare` builds a :class:`PreparedScene` —
  environment with subtyping applied, content fingerprint, cached
  per-policy synthesizers — and registers it in an LRU scene table keyed by
  the *base* environment fingerprint plus the subtype edges, so preparing
  the same scene twice is free;
* :meth:`~CompletionEngine.complete` answers one query, consulting an LRU
  result cache keyed by (prepared-environment fingerprint, goal type,
  weight policy, budgets) before running the pipeline;
* :meth:`~CompletionEngine.complete_batch` serves many queries (across one
  or many scenes) in input order, deduplicating identical misses and
  optionally fanning the remainder out over a process pool;
* :meth:`~CompletionEngine.warm` pre-populates the result cache.

Engine-served results are *identical* to direct
:meth:`~repro.core.synthesizer.Synthesizer.synthesize` output: a cache miss
runs the very same pipeline over the very same prepared environment, and a
hit returns what that run produced.  An engine constructed with a
non-empty :class:`~repro.core.ranking.RankingPipeline` re-scores results
*after* the cache — the cache (and its snapshots) always hold base,
un-reranked results, so one cached synthesis serves every per-query
context and the fingerprint-keyed cache never fragments on hints.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.core.config import SynthesisConfig
from repro.core.environment import Environment
from repro.core.errors import EngineError
from repro.core.ranking import CompletionContext, RankingPipeline
from repro.core.subtyping import SubtypeGraph, environment_with_subtyping
from repro.core.synthesizer import SynthesisResult, Synthesizer
from repro.core.types import Type
from repro.core.weights import WeightPolicy
from repro.corpus.mining import ProjectWeightTables
from repro.engine.cache import CacheStats, LRUCache
from repro.engine.keys import QueryKey, config_key, policy_key, query_key
from repro.engine.pool import default_worker_count, run_batch

#: The three Table 2 policy variants, by name.
VARIANTS = ("no_weights", "no_corpus", "full")

#: Format version of result-cache snapshot files
#: (:meth:`CompletionEngine.snapshot_results`); bump on layout changes —
#: a mismatched snapshot restores nothing rather than garbage.
SNAPSHOT_VERSION = 1


def policy_for_variant(variant: str) -> WeightPolicy:
    """The weight policy behind a Table 2 variant name."""
    if variant == "no_weights":
        return WeightPolicy.uniform_policy()
    if variant == "no_corpus":
        return WeightPolicy.without_corpus()
    if variant == "full":
        return WeightPolicy.standard()
    raise EngineError(f"unknown variant {variant!r}; expected one of {VARIANTS}")


@dataclass
class PreparedScene:
    """One scene's reusable synthesis state.

    ``environment`` is the coercion-extended environment (what the pipeline
    actually searches); ``fingerprint`` hashes it, so any change to the
    declarations *or* the subtype edges yields a different prepared identity
    and therefore different cache keys.
    """

    name: str
    base_environment: Environment
    environment: Environment
    subtypes: SubtypeGraph
    fingerprint: str
    goal: Optional[Type] = None
    #: The engine scene-table key this state lives under (set by
    #: :meth:`CompletionEngine.prepare`); release and LRU promotion use it
    #: without re-fingerprinting the base environment.
    scene_key: Optional[tuple] = None
    _synthesizers: dict = field(default_factory=dict, repr=False)

    def synthesizer(self, policy: WeightPolicy,
                    config: SynthesisConfig) -> Synthesizer:
        """A (cached) synthesizer over this scene for one policy/config."""
        key = (policy_key(policy), config_key(config))
        synthesizer = self._synthesizers.get(key)
        if synthesizer is None:
            synthesizer = Synthesizer.from_prepared(
                self.environment, self.base_environment, self.subtypes,
                policy=policy, config=config)
            self._synthesizers[key] = synthesizer
        return synthesizer

    def __repr__(self) -> str:
        return (f"PreparedScene({self.name!r}, "
                f"{len(self.environment)} declarations, "
                f"fingerprint {self.fingerprint[:12]}...)")


#: Anything ``complete`` accepts as a scene: already-prepared state, a bare
#: environment, or a Scene-like object (``.environment``/``.subtypes``/...).
SceneLike = Union[PreparedScene, Environment, object]


@dataclass(frozen=True)
class EngineQuery:
    """One entry of a :meth:`CompletionEngine.complete_batch` request."""

    goal: Type
    scene: Optional[SceneLike] = None     # falls back to the batch default
    variant: Optional[str] = None
    policy: Optional[WeightPolicy] = None
    config: Optional[SynthesisConfig] = None
    n: Optional[int] = None
    context: Optional[CompletionContext] = None


@dataclass
class EngineResult:
    """A synthesis result plus how the engine served it."""

    result: SynthesisResult
    key: QueryKey
    cache_hit: bool
    scene_name: str
    engine_seconds: float
    #: True when the ranking pipeline adjusted this result after cache
    #: lookup (the cached entry itself is always the base result).
    reranked: bool = False

    @property
    def snippets(self):
        return self.result.snippets


@dataclass(frozen=True)
class _ResolvedQuery:
    """One query after default resolution: everything needed to serve it."""

    prepared: PreparedScene
    goal: Type
    policy: WeightPolicy
    config: SynthesisConfig
    n: Optional[int]
    key: QueryKey


@dataclass(frozen=True)
class _RemoteQuery:
    """A picklable query for process-pool workers.

    ``environment`` may be ``None`` when ``fingerprint`` is set: the
    worker then serves from its per-process scene memo and raises
    :class:`WorkerSceneUnavailable` on a miss, letting the caller retry
    with the full environment.  Shipping the reference instead of the
    scene is what makes pooled serving cheap — a multi-thousand-
    declaration environment costs tens of milliseconds to pickle per
    query, the reference costs microseconds.
    """

    environment: Optional[Environment]
    subtype_edges: tuple[tuple[str, str], ...]
    goal: Type
    policy: WeightPolicy
    config: SynthesisConfig
    n: Optional[int]
    #: Content fingerprint of ``environment``; pass it when known so the
    #: worker's memo lookup never re-hashes thousands of declarations.
    fingerprint: Optional[str] = None


class WorkerSceneUnavailable(Exception):
    """A reference-only remote query missed the worker's scene memo.

    Picklable across the pool boundary; the dispatching side retries the
    same query with the environment attached.
    """


#: Per-process scene memo for pool workers: chunked maps hand several
#: payloads to the same worker, and re-preparing a multi-thousand-
#: declaration scene per payload would repay the cost the engine
#: amortizes.  Keyed like the engine's own scene table; bounded because
#: workers can outlive one batch.
_WORKER_SCENES = LRUCache(max_entries=8)


def _execute_remote(query: _RemoteQuery) -> SynthesisResult:
    """Worker entry point: (re)prepare the scene once, run the pipeline."""
    fingerprint = (query.fingerprint if query.fingerprint is not None
                   else query.environment.fingerprint())
    key = (fingerprint, query.subtype_edges)
    prepared = _WORKER_SCENES.get(key)
    if prepared is None:
        if query.environment is None:
            raise WorkerSceneUnavailable(fingerprint)
        graph = SubtypeGraph()
        for subtype, supertype in query.subtype_edges:
            graph.add_edge(subtype, supertype)
        extended = environment_with_subtyping(query.environment, graph)
        prepared = (query.environment, extended, graph)
        _WORKER_SCENES.put(key, prepared)
    base, extended, graph = prepared
    synthesizer = Synthesizer.from_prepared(extended, base, graph,
                                            policy=query.policy,
                                            config=query.config)
    return synthesizer.synthesize(query.goal, n=query.n)


class CompletionEngine:
    """A reusable, caching front end over the synthesis pipeline."""

    def __init__(self, policy: Optional[WeightPolicy] = None,
                 config: Optional[SynthesisConfig] = None,
                 result_entries: int = 512,
                 scene_entries: int = 16,
                 max_workers: int = 1,
                 ranking: Optional[RankingPipeline] = None):
        self.default_policy = policy or WeightPolicy.standard()
        self.default_config = config or SynthesisConfig.paper_defaults()
        self.results = LRUCache(result_entries)
        self.scenes = LRUCache(scene_entries)
        self.max_workers = max_workers
        #: The post-cache re-weighting stage.  Defaults to the *empty*
        #: pipeline: a bare engine is byte-identical to the pre-ranking
        #: weight path (bench/CLI/table-2 parity); serving layers opt in
        #: with ``RankingPipeline.standard()``.
        self.ranking = ranking if ranking is not None \
            else RankingPipeline.empty()
        #: Per-project frequency tables for the project-affinity weigher;
        #: ``None`` means every scene uses the (base-weight) global table.
        self.project_weights: Optional[ProjectWeightTables] = None
        self._ranking_lock = threading.Lock()
        self._rank_counters = {"reranks": 0, "reordered": 0}
        self._weigher_counters: dict[str, int] = {}

    # -- scene preparation ---------------------------------------------------

    def prepare(self, environment: Environment,
                subtypes: Optional[SubtypeGraph] = None,
                goal: Optional[Type] = None,
                name: str = "scene") -> PreparedScene:
        """Prepare (or fetch the already-prepared state of) one scene."""
        subtypes = subtypes or SubtypeGraph()
        scene_key = (environment.fingerprint(), tuple(subtypes.edges()))
        prepared = self.scenes.get(scene_key)
        if prepared is None:
            extended = environment_with_subtyping(environment, subtypes)
            extended.succinct_environment()  # precompute sigma(Gamma_o)
            prepared = PreparedScene(
                name=name,
                base_environment=environment,
                environment=extended,
                subtypes=subtypes,
                fingerprint=extended.fingerprint(),
                goal=goal,
                scene_key=scene_key,
            )
            self.scenes.put(scene_key, prepared)
            return prepared
        # Cache hit: the expensive state is shared, but the caller's default
        # goal (and label) must win — two scenes with identical declarations
        # may still ask for different things.
        overrides = {}
        if goal is not None and goal != prepared.goal:
            overrides["goal"] = goal
        if name != "scene" and name != prepared.name:
            overrides["name"] = name
        if overrides:
            prepared = dataclasses.replace(prepared, **overrides)
        return prepared

    def prepare_scene(self, scene) -> PreparedScene:
        """Prepare a Scene-like object (``.environment``/``.subtypes``/...)."""
        return self.prepare(scene.environment,
                            subtypes=getattr(scene, "subtypes", None),
                            goal=getattr(scene, "goal", None),
                            name=getattr(scene, "name", "scene"))

    def open_session(self, scene: "SceneLike", name: Optional[str] = None):
        """Open an incremental :class:`~repro.incremental.SceneSession`.

        The editor-path API: ``apply_delta`` advances the session by
        declaration-level add/remove ops with an incremental re-prepare,
        ``complete`` serves against the current state through this
        engine's caches.  Sessions are the engine-call form of the
        server's ``/v1/edit-scene`` endpoint, so CLI, bench and server
        paths stay expressible as the same calls.
        """
        from repro.incremental.session import SceneSession  # deferred: layering

        return SceneSession(self, self._as_prepared(scene), name=name)

    def _as_prepared(self, scene: Optional[SceneLike]) -> PreparedScene:
        if isinstance(scene, PreparedScene):
            return scene
        if isinstance(scene, Environment):
            return self.prepare(scene)
        if scene is not None and hasattr(scene, "environment"):
            return self.prepare_scene(scene)
        raise EngineError(f"cannot prepare a scene from {scene!r}")

    # -- single queries ------------------------------------------------------

    def _resolve_policy(self, variant: Optional[str],
                        policy: Optional[WeightPolicy]) -> WeightPolicy:
        if policy is not None and variant is not None:
            raise EngineError("pass either variant= or policy=, not both")
        if policy is not None:
            return policy
        if variant is not None:
            return policy_for_variant(variant)
        return self.default_policy

    def _resolve_query(self, scene: Optional[SceneLike], goal: Optional[Type],
                       variant: Optional[str], policy: Optional[WeightPolicy],
                       config: Optional[SynthesisConfig], n: Optional[int],
                       ) -> "_ResolvedQuery":
        """Normalise one query to (prepared scene, goal, policy, config, key).

        Shared by :meth:`complete` and :meth:`complete_batch` so the two
        serving paths can never drift in key construction or defaults.
        """
        prepared = self._as_prepared(scene)
        goal = goal if goal is not None else prepared.goal
        if goal is None:
            raise EngineError(
                f"scene {prepared.name!r} has no goal; pass one explicitly")
        policy = self._resolve_policy(variant, policy)
        config = config or self.default_config
        key = query_key(prepared.fingerprint, goal, policy, config, n)
        return _ResolvedQuery(prepared, goal, policy, config, n, key)

    def complete(self, scene: SceneLike, goal: Optional[Type] = None, *,
                 variant: Optional[str] = None,
                 policy: Optional[WeightPolicy] = None,
                 config: Optional[SynthesisConfig] = None,
                 n: Optional[int] = None,
                 context: Optional[CompletionContext] = None) -> EngineResult:
        """Serve one query, from cache when possible.

        The returned :class:`~repro.core.synthesizer.SynthesisResult` is
        shared between callers that hit the same cache entry — treat it as
        read-only.  ``context`` carries per-query position hints for the
        ranking pipeline; it deliberately does *not* participate in the
        cache key, so the same query under different hints is a cache hit
        re-ranked per context.
        """
        start = time.perf_counter()
        query = self._resolve_query(scene, goal, variant, policy, config, n)
        prepared, key = query.prepared, query.key
        cached = self.results.get(key)
        if cached is not None:
            served, reranked = self.rerank_result(cached, prepared, context)
            return EngineResult(served, key, True, prepared.name,
                                time.perf_counter() - start, reranked)

        result = prepared.synthesizer(query.policy, query.config).synthesize(
            query.goal, n=n)
        self.results.put(key, result)
        served, reranked = self.rerank_result(result, prepared, context)
        return EngineResult(served, key, False, prepared.name,
                            time.perf_counter() - start, reranked)

    # -- post-cache ranking ----------------------------------------------------

    def set_project_weights(self,
                            tables: Optional[ProjectWeightTables]) -> None:
        """Install (or clear) the per-project tables the ranking stage uses."""
        self.project_weights = tables

    def rerank_result(self, result: SynthesisResult, prepared: PreparedScene,
                      context: Optional[CompletionContext] = None,
                      ) -> tuple[SynthesisResult, bool]:
        """Apply the ranking pipeline to one (possibly cached) base result.

        Runs strictly *after* cache lookup — cached entries stay base —
        and returns the input object unchanged when the chain is empty or
        adjusts nothing, preserving the parity and identity guarantees
        the engine tests pin down.
        """
        pipeline = self.ranking
        if not pipeline or not result.snippets:
            return result, False
        if context is not None and context.is_empty:
            context = None
        frequencies = None
        if self.project_weights is not None:
            table = self.project_weights.for_scene(prepared.name)
            if len(table):
                frequencies = table
        outcome = pipeline.rerank(result, prepared.environment,
                                  context=context, frequencies=frequencies)
        with self._ranking_lock:
            self._rank_counters["reranks"] += 1
            if outcome.reordered:
                self._rank_counters["reordered"] += 1
            for name, moved in outcome.adjustments.items():
                if moved:
                    self._weigher_counters[name] = \
                        self._weigher_counters.get(name, 0) + moved
        return outcome.result, outcome.applied

    def ranking_stats(self) -> dict:
        """Ranking counters for ``/v1/stats``: reranks + per-weigher moves."""
        with self._ranking_lock:
            return {
                "weighers": list(self.ranking.names),
                "reranks": self._rank_counters["reranks"],
                "reordered": self._rank_counters["reordered"],
                "adjustments": dict(sorted(self._weigher_counters.items())),
            }

    # -- batched queries -----------------------------------------------------

    def complete_batch(self, queries: Sequence[EngineQuery],
                       scene: Optional[SceneLike] = None,
                       max_workers: Optional[int] = None,
                       ) -> list[EngineResult]:
        """Serve many queries, returning results in input order.

        Cache hits are answered immediately; identical misses are computed
        once; remaining misses run sequentially or, with ``max_workers > 1``
        (default: the engine's setting), on a process pool.

        ``engine_seconds`` is per query on hits and sequential misses; on
        the pooled path the pool's wall-clock time is attributed to every
        computed result (per-result attribution inside one parallel map is
        not meaningful).
        """
        workers = self.max_workers if max_workers is None else max_workers

        resolved: list[_ResolvedQuery] = []
        outcomes: list[Optional[EngineResult]] = [None] * len(queries)
        miss_keys: dict[QueryKey, list[int]] = {}
        for index, query in enumerate(queries):
            lookup_start = time.perf_counter()
            entry = self._resolve_query(
                query.scene if query.scene is not None else scene,
                query.goal, query.variant, query.policy, query.config,
                query.n)
            resolved.append(entry)
            cached = self.results.get(entry.key)
            if cached is not None:
                outcomes[index] = EngineResult(
                    cached, entry.key, True, entry.prepared.name,
                    time.perf_counter() - lookup_start)
            else:
                miss_keys.setdefault(entry.key, []).append(index)

        if miss_keys:
            # One representative query per distinct key.
            order = [indices[0] for indices in miss_keys.values()]
            if workers > 1:
                payloads = [
                    _RemoteQuery(
                        environment=resolved[i].prepared.base_environment,
                        subtype_edges=tuple(
                            resolved[i].prepared.subtypes.edges()),
                        goal=resolved[i].goal,
                        policy=resolved[i].policy,
                        config=resolved[i].config,
                        n=resolved[i].n,
                        fingerprint=resolved[
                            i].prepared.base_environment.fingerprint(),
                    )
                    for i in order
                ]
                pool_start = time.perf_counter()
                computed = run_batch(_execute_remote, payloads,
                                     max_workers=workers)
                pool_seconds = time.perf_counter() - pool_start
                elapsed = [pool_seconds] * len(order)
            else:
                computed = []
                elapsed = []
                for i in order:
                    entry = resolved[i]
                    compute_start = time.perf_counter()
                    computed.append(
                        entry.prepared.synthesizer(
                            entry.policy, entry.config).synthesize(
                                entry.goal, n=entry.n))
                    elapsed.append(time.perf_counter() - compute_start)
            for representative, result, seconds in zip(order, computed,
                                                       elapsed):
                key = resolved[representative].key
                self.results.put(key, result)
                for index in miss_keys[key]:
                    duplicate = index != representative
                    if duplicate:
                        # Serve duplicates through the cache so the stats
                        # agree with the per-result ``cache_hit`` flags.
                        serve_start = time.perf_counter()
                        result = self.results.get(key)
                        seconds = time.perf_counter() - serve_start
                    outcomes[index] = EngineResult(
                        result, key, duplicate, resolved[index].prepared.name,
                        seconds)

        if self.ranking:
            # Post-cache, per-query: duplicates of one cached synthesis can
            # each carry different context hints.
            for index, outcome in enumerate(outcomes):
                if outcome is None:
                    continue
                served, reranked = self.rerank_result(
                    outcome.result, resolved[index].prepared,
                    queries[index].context)
                if reranked:
                    outcomes[index] = dataclasses.replace(
                        outcome, result=served, reranked=True)

        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    # -- cache management ----------------------------------------------------

    def warm(self, scene: SceneLike, goals: Iterable[Type],
             variants: Sequence[str] = ("full",),
             config: Optional[SynthesisConfig] = None,
             n: Optional[int] = None) -> int:
        """Pre-populate the result cache; returns fresh computations done."""
        computed = 0
        for goal in goals:
            for variant in variants:
                served = self.complete(scene, goal, variant=variant,
                                       config=config, n=n)
                if not served.cache_hit:
                    computed += 1
        return computed

    @property
    def cache_stats(self) -> CacheStats:
        return self.results.stats

    # -- cache persistence ---------------------------------------------------

    def collect_results(self) -> list:
        """The result cache as picklable ``(QueryKey, result)`` pairs.

        In LRU order (least recent first), so restoring replays the same
        relative order.  Split from :meth:`write_snapshot` so a serving
        layer can take this cheap copy on the cache's owning thread and
        hand the pickling/disk work to an executor — iterating the live
        LRU off-thread would race its ``get``-promotes.
        """
        return [(key, self.results.peek(key)) for key in self.results]

    @staticmethod
    def write_snapshot(path: str, entries: list,
                       project_weights: Optional[dict] = None) -> int:
        """Write collected entries to *path* (any thread; atomic).

        The snapshot is a pickle of ``{"version": ..., "by_fingerprint":
        {fingerprint: [(QueryKey, SynthesisResult), ...]}}`` written
        atomically (temp file + ``os.replace``), so a reader never sees a
        half-written file and a crash mid-save leaves the previous
        snapshot intact.  Returns the number of entries written.

        ``project_weights`` (a ``ProjectWeightTables.to_doc()`` document)
        rides along when given, so a respawned replica restores the same
        per-project ranking behaviour with its warm cache.  The key is
        additive: version-1 snapshots without it restore fine, and older
        readers ignore it.

        Staleness is impossible by construction: every key embeds the
        content fingerprint of the prepared environment, so a restored
        entry is only ever served to a query against byte-identical scene
        content — editing a scene changes its fingerprint and misses.
        Cached results are always *base* (un-reranked) results, so
        snapshots are agnostic to whatever weigher chain is configured.
        """
        import os
        import pickle
        import tempfile

        by_fingerprint: dict[str, list] = {}
        for key, result in entries:
            by_fingerprint.setdefault(key.environment_fingerprint,
                                      []).append((key, result))
        payload = {"version": SNAPSHOT_VERSION,
                   "by_fingerprint": by_fingerprint}
        if project_weights is not None:
            payload["project_weights"] = project_weights
        directory = os.path.dirname(os.path.abspath(path)) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".snapshot-",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(entries)

    def snapshot_results(self, path: str) -> int:
        """Persist the result cache to *path* for cross-process warm-up.

        Collect + write in one call — for single-threaded callers; a
        serving layer splits the two (see :meth:`collect_results`).
        """
        return self.write_snapshot(path, self.collect_results(),
                                   project_weights=self.project_weights_doc())

    def project_weights_doc(self) -> Optional[dict]:
        """The installed per-project tables as a snapshot-ready document."""
        if self.project_weights is None:
            return None
        return self.project_weights.to_doc()

    def restore_results(self, path: str,
                        fingerprints: Optional[set] = None) -> int:
        """Load a :meth:`snapshot_results` file into the result cache.

        Forgiving by design — a replica must come up cold rather than not
        at all: a missing, unreadable, wrong-version or corrupt snapshot
        restores nothing and returns 0.  Every entry is validated against
        the fingerprint it is filed under (``key.environment_fingerprint``
        must match), so a tampered or mis-merged file can never serve a
        result for the wrong scene content.  Pass ``fingerprints`` to
        restore only entries for those environments.  Returns the number
        of entries restored.
        """
        import pickle

        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception:   # noqa: BLE001 — any unreadable file = cold start
            return 0
        if (not isinstance(payload, dict)
                or payload.get("version") != SNAPSHOT_VERSION
                or not isinstance(payload.get("by_fingerprint"), dict)):
            return 0
        weights_doc = payload.get("project_weights")
        if weights_doc is not None and self.project_weights is None:
            # Explicit configuration (``--project-weights``) wins over the
            # snapshot; a bare respawn gets its ranking behaviour back.
            try:
                self.project_weights = ProjectWeightTables.from_doc(
                    weights_doc)
            except Exception:   # noqa: BLE001 — forgiving, like the cache
                pass
        restored = 0
        for fingerprint, entries in payload["by_fingerprint"].items():
            if fingerprints is not None and fingerprint not in fingerprints:
                continue
            if not isinstance(entries, list):
                continue
            for entry in entries:
                if not (isinstance(entry, tuple) and len(entry) == 2):
                    continue
                key, result = entry
                if (not isinstance(key, QueryKey)
                        or key.environment_fingerprint != fingerprint):
                    continue
                self.results.put(key, result)
                restored += 1
        return restored

    # -- scene lifecycle -----------------------------------------------------

    def purge_results(self, fingerprint: str) -> int:
        """Drop every cached result computed against *fingerprint*."""
        stale = [key for key in self.results
                 if key.environment_fingerprint == fingerprint]
        for key in stale:
            self.results.pop(key)
        return len(stale)

    def release_scene(self, prepared: PreparedScene, *,
                      shed_types: bool = True) -> int:
        """Release one prepared scene at a tenancy boundary.

        Drops the scene-table entry, every result cached against the
        scene's fingerprint, the scene's per-policy synthesizers, and the
        scene's environment arena (the prover's STRIP/MATCH memo state —
        see :meth:`~repro.core.environment.Environment.succinct_arena`);
        with ``shed_types`` (the default) also sheds the global
        succinct-type intern table — cleared outright when this was the
        last prepared scene, trimmed to its configured bound otherwise
        (see :func:`repro.core.succinct.trim_intern_table`).  This is the
        hook a serving layer's scene eviction calls so dropping a tenant
        actually frees memory.  Returns the number of purged results.

        Releasing is always safe: a subsequent :meth:`prepare` of the same
        scene simply rebuilds (and re-interns) from scratch, and any
        in-flight synthesis keeps the arena it started with alive until it
        finishes.
        """
        scene_key = prepared.scene_key
        if scene_key is None:
            scene_key = (prepared.base_environment.fingerprint(),
                         tuple(prepared.subtypes.edges()))
        self.scenes.pop(scene_key)
        purged = self.purge_results(prepared.fingerprint)
        prepared._synthesizers.clear()
        prepared.environment.release_arena()
        prepared.base_environment.release_arena()
        if shed_types:
            self.shed_types()
        return purged

    def shed_types(self) -> None:
        """Shed the global succinct-type tables for this engine's tenancy.

        Cleared outright when no prepared scenes remain; trimmed to a
        quarter of the *currently configured* intern-table bound otherwise
        (so operator-tuned limits keep shedding proportionally).  Split
        out from :meth:`release_scene` so a serving layer can run the shed
        off its event loop (``release_scene(..., shed_types=False)`` then
        ``shed_types()`` on an executor).
        """
        from repro.core import space, succinct
        if len(self.scenes) == 0:
            succinct.clear_intern_table()
            # The simple-type id table follows the same discipline: ids
            # stay cached on live instances (and are never reused), so
            # dropping the structural table only frees dead entries.
            space.trim_simple_type_ids(0)
        else:
            limit = succinct.intern_table_stats()["limit"]
            succinct.trim_intern_table(limit // 4)
            # Bound the simple-type table under scene churn too; live
            # scenes keep their ids through the instance caches.
            space.trim_simple_type_ids(limit // 4)

    def clear(self) -> None:
        """Drop all cached results and prepared scenes."""
        self.results.clear()
        self.scenes.clear()

    def __repr__(self) -> str:
        return (f"CompletionEngine({len(self.scenes)} scenes, "
                f"{len(self.results)} results, {self.cache_stats.as_text()})")


def default_engine_workers() -> int:
    """Worker count hint for batch CLIs (one per core)."""
    return default_worker_count()
