"""The serving layer: a long-lived, caching, batching completion engine.

``repro.core`` implements the paper's per-query pipeline; this package
amortises it for production-style workloads.  A scene is *prepared* once
(coercion extension, succinct signature, interning, fingerprinting) and
then serves many queries, with an LRU result cache and an order-preserving
batch API that can fan out across processes.  The benchmark runner and the
CLI both sit on top of this seam, and so should every future scaling layer
(sharding, async serving, multi-backend).
"""

from repro.engine.cache import CacheStats, LRUCache
from repro.engine.engine import (VARIANTS, CompletionEngine, EngineQuery,
                                 EngineResult, PreparedScene,
                                 default_engine_workers, policy_for_variant)
from repro.engine.keys import QueryKey, config_key, policy_key, query_key
from repro.engine.pool import default_worker_count, run_batch

__all__ = [
    "CacheStats",
    "CompletionEngine",
    "EngineQuery",
    "EngineResult",
    "LRUCache",
    "PreparedScene",
    "QueryKey",
    "VARIANTS",
    "config_key",
    "default_engine_workers",
    "default_worker_count",
    "policy_for_variant",
    "policy_key",
    "query_key",
    "run_batch",
]
