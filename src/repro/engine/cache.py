"""A small LRU result cache with observable statistics.

The completion engine answers repeated queries — same scene, same goal,
same policy and budgets — straight from memory.  The cache is a plain
ordered-dict LRU: ``get`` promotes, ``put`` evicts the least recently used
entry once ``max_entries`` is exceeded.  :class:`CacheStats` counts hits,
misses, insertions and evictions so benchmarks (and the ``warm`` CLI
command) can report hit rates.

Keys are opaque hashables; the engine builds them from the environment
fingerprint, the goal type, the weight policy and the synthesis budgets
(see ``repro.engine.keys``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator, Optional


@dataclass
class CacheStats:
    """Counters describing one cache's lifetime behaviour.

    ``insertions`` counts only *new* keys; re-``put``-ing an existing key
    is a ``refresh`` (value replaced, entry promoted) so hit-rate reports
    built from insertions are not skewed by refreshed entries.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    refreshes: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_text(self) -> str:
        refreshed = (f", {self.refreshes} refreshes" if self.refreshes
                     else "")
        return (f"{self.hits} hits / {self.lookups} lookups "
                f"({self.hit_rate:.0%}), {self.insertions} insertions"
                f"{refreshed}, {self.evictions} evictions")


class LRUCache:
    """Least-recently-used mapping with bounded size and stats."""

    def __init__(self, max_entries: int = 256,
                 on_evict: Optional[Callable[[Hashable, Any], None]] = None):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.on_evict = on_evict
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.stats = CacheStats()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for *key* (promoting it), or *default*."""
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but without promoting or counting the lookup."""
        return self._entries.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key -> value``, evicting if over capacity.

        A *new* key counts as an insertion; an existing key counts as a
        refresh (promoted, value replaced) — the two are tracked
        separately so insertion counts reflect distinct cached entries.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.refreshes += 1
        else:
            self.stats.insertions += 1
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            evicted_key, evicted_value = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted_key, evicted_value)

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return *key*'s value.

        Deliberately invisible to the statistics: a pop is an owner-driven
        removal (explicit release, purge), not a lookup, so it counts as
        neither hit/miss nor eviction, and the eviction callback does NOT
        fire — callers that need release side effects (engine release,
        registry accounting) perform them explicitly with the returned
        value.  This is the contract `SceneRegistry.release` and
        `CompletionEngine.purge_results` rely on.
        """
        return self._entries.pop(key, default)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Hashable]:
        """Keys, least recently used first."""
        return iter(self._entries)

    def clear(self, reset_stats: bool = False) -> None:
        self._entries.clear()
        if reset_stats:
            self.stats = CacheStats()

    def __repr__(self) -> str:
        return (f"LRUCache({len(self)}/{self.max_entries} entries, "
                f"{self.stats.as_text()})")
