#!/usr/bin/env python3
"""Semantic synthesis: type-correct stream + example filtering (§9).

The paper's conclusions sketch the follow-on system: "generate a stream of
type-correct solutions and then filter it to contain only expressions that
meet given specifications, such as ... input/output examples", and note
that "conditionals, loops, and recursion schemas can themselves be viewed
as higher-order functions".

This example does both.  Goal: a function ``Boolean -> Int -> Int`` that
returns its argument doubled when the flag is set and unchanged otherwise.
The environment offers arithmetic primitives and an ``if`` combinator; the
synthesizer enumerates ranked type-correct candidates; two input/output
examples pick out the right one.

Run:  python examples/semantic_synthesis.py
"""

from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.synthesizer import Synthesizer
from repro.core.config import SynthesisConfig
from repro.extensions.combinators import (denotations_for,
                                          if_then_else_declaration)
from repro.extensions.semantics import Example, evaluate_term, filter_snippets
from repro.lang.parser import parse_type


def main() -> None:
    ite = if_then_else_declaration("Int")
    declarations = [
        Declaration("double", parse_type("Int -> Int"), DeclKind.LOCAL),
        Declaration("inc", parse_type("Int -> Int"), DeclKind.LOCAL),
        Declaration("zero", parse_type("Int"), DeclKind.LOCAL),
        ite,
    ]
    environment = Environment(declarations)
    goal = parse_type("Boolean -> Int -> Int")

    config = SynthesisConfig(max_snippets=200, prover_time_limit=None,
                             reconstruction_time_limit=2.0)
    result = Synthesizer(environment, config=config).synthesize(goal, n=60)
    print(f"goal {goal}: {len(result.snippets)} type-correct candidates, "
          "first five by weight:")
    for snippet in result.snippets[:5]:
        print(f"  {snippet.rank:>3}. {snippet.code}")

    denotations = {"double": lambda v: v * 2, "inc": lambda v: v + 1,
                   "zero": 0}
    denotations.update(denotations_for([ite]))
    examples = [
        Example.of(True, 3, 6),    # flag set: doubled
        Example.of(False, 3, 3),   # flag clear: unchanged
        Example.of(True, 10, 20),
        Example.of(False, 10, 10),
    ]
    survivors = filter_snippets(result.snippets, examples, denotations)
    print(f"\nafter filtering on {len(examples)} input/output examples: "
          f"{len(survivors)} survivor(s)")
    for snippet in survivors[:3]:
        print(f"  {snippet.rank:>3}. {snippet.code}")

    if survivors:
        chosen = evaluate_term(survivors[0].surface_term, denotations)
        print("\nexecuting the best survivor:")
        for flag, value in [(True, 7), (False, 7)]:
            print(f"  f({flag}, {value}) = {chosen(flag, value)}")


if __name__ == "__main__":
    main()
