#!/usr/bin/env python3
"""Synthesis over Scala's higher-order collection API.

InSynth's home turf is the Scala IDE, where the visible API is full of
higher-order members (``map``, ``filter``, ``foldLeft``, ``getOrElse``).
This example builds a scene over the modelled Scala collections slice and
shows the synthesizer (a) chaining methods, (b) inventing closures for
function-typed parameters, and (c) ranking the boring right answer first.

Run:  python examples/scala_collections.py
"""

from repro.core.synthesizer import Synthesizer
from repro.javamodel.jdk import scala_lib
from repro.javamodel.model import ApiModel
from repro.javamodel.scope import ProgramPoint
from repro.lang.printer import render_ranked


def main() -> None:
    api = ApiModel()
    scala_lib.build(api)

    point = (ProgramPoint(api, name="scala-collections")
             .import_all()
             .add_local("names", "StringList")
             .add_local("shorten", "String -> String")
             .add_local("keep", "String -> boolean")
             .set_goal("StringList"))
    scene = point.build()

    result = Synthesizer(scene.environment,
                         subtypes=scene.subtypes).synthesize(scene.goal, n=8)
    print("goal StringList — suggestions:")
    print(render_ranked(result.snippets))

    # A function-typed goal: the synthesizer must build a String => String.
    point2 = (ProgramPoint(api, name="scala-function-goal")
              .import_all()
              .add_local("shorten", "String -> String")
              .add_local("prefix", "String")
              .set_goal("String -> String"))
    scene2 = point2.build()
    result2 = Synthesizer(scene2.environment,
                          subtypes=scene2.subtypes).synthesize(scene2.goal,
                                                               n=8)
    print("\ngoal String => String — suggestions:")
    print(render_ranked(result2.snippets))


if __name__ == "__main__":
    main()
