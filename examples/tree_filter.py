#!/usr/bin/env python3
"""The paper's §2.2 example: higher-order function synthesis.

The Scala IDE fragment needs a ``FilterTypeTreeTraverser`` whose constructor
takes a *function* ``Tree => Boolean``.  The synthesizer must invent the
closure ``var1 => p(var1)`` around the in-scope predicate ``p`` — the
capability that distinguishes InSynth from method-chain completion tools.

Run:  python examples/tree_filter.py
"""

from repro.core.synthesizer import Synthesizer
from repro.core.terms import lnf_depth
from repro.javamodel.scenes import tree_filter_scene
from repro.lang.printer import render_ranked


SCALA_CONTEXT = '''\
class TreeWrapper(tree: Tree) {
  def filter(p: Tree => Boolean): List[Tree] = {
    val ft: FilterTypeTreeTraverser = <cursor>
    ft.traverse(tree)
    ft.hits.toList
  }
}'''


def main() -> None:
    print("Scala context (from the Scala IDE code base):\n")
    print(SCALA_CONTEXT)

    scene = tree_filter_scene()
    print(f"\nvisible declarations: {scene.initial_count} (paper: ~4000)")

    synthesizer = Synthesizer(scene.environment, subtypes=scene.subtypes)
    result = synthesizer.synthesize(scene.goal, n=5)

    print("\nInSynth suggests:")
    print(render_ranked(result.snippets))

    top = result.snippets[0]
    print(f"\nrank-1 snippet: {top.code}")
    print(f"  term:   {top.surface_term}")
    print(f"  depth:  {lnf_depth(top.surface_term)}")
    print(f"  weight: {top.weight:.1f}")
    print(f"\nsynthesis took {result.total_seconds * 1000:.0f} ms "
          f"(paper: < 300 ms)")
    print("\nThe paper's expected snippet is "
          "new FilterTypeTreeTraverser(var1 => p(var1)) — "
          "the closure is synthesized, not looked up.")


if __name__ == "__main__":
    main()
