#!/usr/bin/env python3
"""Driving the synthesizer from a declaration file.

Environments can be written in a small textual language (see
``repro.lang``): declarations with their Table 1 natures, subtype edges,
literals and the goal type.  This example embeds a scene as text, loads it
and synthesizes — the same path a benchmark-from-file workflow would use.

Run:  python examples/declaration_language.py
"""

from repro.core.synthesizer import Synthesizer
from repro.lang.loader import load_environment_text
from repro.lang.printer import render_ranked

SCENE = """
# A miniature URL-fetching scene written in the declaration language.
subtype HttpURLConnection <: URLConnection
subtype BufferedInputStream <: InputStream

local address : String
local conn : HttpURLConnection

imported java.net.URL.new : String -> URL \
[freq=210] [style=constructor] [display=URL]
imported java.net.URL.openConnection : URL -> URLConnection \
[freq=150] [style=method] [display=openConnection]
imported java.net.URLConnection.getInputStream : \
URLConnection -> InputStream \
[freq=180] [style=method] [display=getInputStream]
imported java.io.BufferedInputStream.new : \
InputStream -> BufferedInputStream \
[freq=120] [style=constructor] [display=BufferedInputStream]
literal "http://example.org" : String

goal InputStream
"""


def main() -> None:
    loaded = load_environment_text(SCENE)
    print(f"loaded {len(loaded.environment)} declarations, "
          f"{len(loaded.subtypes)} subtype edges, goal = {loaded.goal}\n")

    synthesizer = Synthesizer(loaded.environment, subtypes=loaded.subtypes)
    result = synthesizer.synthesize(loaded.goal, n=5)

    print("suggestions for the goal type InputStream:")
    print(render_ranked(result.snippets))
    print("\nnote how the chain conn.getInputStream() (local, cheap) beats")
    print("building a fresh URL from the literal (imported + literal).")


if __name__ == "__main__":
    main()
