#!/usr/bin/env python3
"""The paper's §2.3 example: subtyping via coercion functions.

Implementing ``def getLayout: LayoutManager`` for a class holding a
``Panel`` requires knowing that ``Panel <: Container`` and that
``Container`` declares ``getLayout(): LayoutManager``.  The synthesizer
models each subtype edge as a coercion function (§6), searches with them
like ordinary unary functions, and erases them from the printed snippet.

Run:  python examples/drawing_layout.py
"""

from repro.core.subtyping import count_coercions
from repro.core.synthesizer import Synthesizer
from repro.javamodel.scenes import drawing_layout_scene
from repro.lang.printer import render_ranked


def main() -> None:
    scene = drawing_layout_scene()
    print("class Drawing(panel: Panel) {")
    print("  def getLayout: LayoutManager = <cursor>")
    print("}\n")
    print(f"visible declarations: {scene.initial_count} (paper: 4965)")
    print(f"subtype edges in scope: {len(scene.subtypes)}\n")

    synthesizer = Synthesizer(scene.environment, subtypes=scene.subtypes)
    result = synthesizer.synthesize(scene.goal, n=10)

    print("InSynth suggests:")
    print(render_ranked(result.snippets))

    wanted = next((snippet for snippet in result.snippets
                   if snippet.code == "panel.getLayout()"), None)
    if wanted is not None:
        print(f"\nthe desired snippet 'panel.getLayout()' is at rank "
              f"{wanted.rank} (paper: rank 2)")
        print(f"  raw term uses {count_coercions(wanted.term)} coercion(s): "
              f"{wanted.term}")
        print(f"  surface term after erasure:  {wanted.surface_term}")
    print(f"\nsynthesis took {result.total_seconds * 1000:.0f} ms "
          f"(paper: 426 ms)")


if __name__ == "__main__":
    main()
