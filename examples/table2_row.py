#!/usr/bin/env python3
"""Run one Table 2 benchmark under all three algorithm variants.

Pass a benchmark number (1-50) as the first argument; default is 44, the
SequenceInputStream row.  Prints the measured rank and timing of the goal
snippet for the "No weights", "No corpus" and full variants next to the
published numbers.

Run:  python examples/table2_row.py [NUMBER]
"""

import sys

from repro.bench.runner import run_benchmark
from repro.bench.suite import benchmark_by_number


def main() -> None:
    number = int(sys.argv[1]) if len(sys.argv) > 1 else 44
    spec = benchmark_by_number(number)
    row = spec.row

    print(f"benchmark #{number}: {spec.name}")
    print(f"  {spec.description}")
    print(f"  goal type: {spec.goal}")
    print(f"  expected:  {spec.expected[0]}")
    print(f"  #initial:  {row.n_initial} declarations\n")

    result = run_benchmark(spec)

    def fmt(rank):
        return ">10" if rank is None else str(rank)

    print(f"{'variant':<12} {'rank':>6} {'paper':>6} {'total ms':>9} "
          f"{'paper ms':>9}")
    rows = [
        ("no_weights", row.rank_no_weights, row.total_no_weights_ms),
        ("no_corpus", row.rank_no_corpus, row.total_no_corpus_ms),
        ("full", row.rank_full, row.total_full_ms),
    ]
    for variant, paper_rank, paper_ms in rows:
        outcome = result.outcomes[variant]
        print(f"{variant:<12} {fmt(outcome.rank):>6} {fmt(paper_rank):>6} "
              f"{outcome.total_ms:>9.0f} {paper_ms:>9}")

    full = result.outcomes["full"]
    print(f"\ntop suggestion (full variant): {full.top_snippet}")


if __name__ == "__main__":
    main()
