#!/usr/bin/env python3
"""The paper's Figure 1 / §2.1 example: Sequence of Streams.

Reconstructs the motivating scene — a cursor expecting a
``SequenceInputStream`` with locals ``body`` and ``sig`` in scope and all of
``java.io`` imported (3356 visible declarations, as in the paper) — and
prints the top five ranked suggestions, the succinct-type compression
statistic from §3.2, and the latency split.

Run:  python examples/sequence_of_streams.py
"""

from repro.core.succinct import compression_ratio
from repro.core.synthesizer import Synthesizer
from repro.javamodel.scenes import (FIGURE1_SUCCINCT_TYPES,
                                    sequence_of_streams_scene)
from repro.lang.printer import render_ranked


def main() -> None:
    scene = sequence_of_streams_scene()
    print(f"scene: {scene.name}")
    print(f"visible declarations: {scene.initial_count} (paper: 3356)")

    types = [decl.type for decl in scene.environment]
    total, distinct = compression_ratio(types)
    print(f"succinct compression: {total} declaration types -> "
          f"{distinct} succinct types "
          f"(paper: 3356 -> {FIGURE1_SUCCINCT_TYPES})\n")

    synthesizer = Synthesizer(scene.environment, subtypes=scene.subtypes)
    result = synthesizer.synthesize(scene.goal, n=5)

    print("InSynth suggests (top five):")
    print(render_ranked(result.snippets))
    print(f"\nprover {result.prove_seconds * 1000:.0f} ms + "
          f"reconstruction {result.reconstruction_seconds * 1000:.0f} ms = "
          f"{result.total_seconds * 1000:.0f} ms total "
          f"(paper: < 250 ms)")


if __name__ == "__main__":
    main()
