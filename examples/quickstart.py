#!/usr/bin/env python3
"""Quickstart: synthesize expressions of a desired type.

Builds a small typed environment by hand, asks the synthesizer for the five
best-ranked expressions of type ``SequenceInputStream``, and prints them —
the library-level equivalent of pressing Ctrl+Space in the paper's Eclipse
plugin.

Run:  python examples/quickstart.py
"""

from repro import (Declaration, DeclKind, Environment, RenderSpec,
                   RenderStyle, SubtypeGraph, Synthesizer, parse_type,
                   render_ranked)


def main() -> None:
    # The declarations visible at the "cursor": two locals and a few
    # imported constructors, with corpus usage frequencies.
    environment = Environment([
        Declaration("body", parse_type("InputStream"), DeclKind.LOCAL),
        Declaration("sig", parse_type("String"), DeclKind.LOCAL),
        Declaration(
            "java.io.SequenceInputStream.new",
            parse_type("InputStream -> InputStream -> SequenceInputStream"),
            DeclKind.IMPORTED, frequency=60,
            render=RenderSpec(RenderStyle.CONSTRUCTOR, "SequenceInputStream")),
        Declaration(
            "java.io.FileInputStream.new",
            parse_type("String -> FileInputStream"),
            DeclKind.IMPORTED, frequency=300,
            render=RenderSpec(RenderStyle.CONSTRUCTOR, "FileInputStream")),
        Declaration(
            "java.io.ByteArrayInputStream.new",
            parse_type("ByteArray -> ByteArrayInputStream"),
            DeclKind.IMPORTED, frequency=10,
            render=RenderSpec(RenderStyle.CONSTRUCTOR, "ByteArrayInputStream")),
    ])

    # Subtyping is modelled with coercion functions (paper §6); the
    # synthesizer inserts them during search and erases them on output.
    subtypes = SubtypeGraph()
    subtypes.add_edge("FileInputStream", "InputStream")
    subtypes.add_edge("ByteArrayInputStream", "InputStream")
    subtypes.add_edge("SequenceInputStream", "InputStream")

    synthesizer = Synthesizer(environment, subtypes=subtypes)
    goal = parse_type("SequenceInputStream")
    result = synthesizer.synthesize(goal, n=5)

    print(f"goal type: {goal}")
    print(f"inhabited: {result.inhabited}")
    print(f"prover {result.prove_seconds * 1000:.1f} ms, "
          f"reconstruction {result.reconstruction_seconds * 1000:.1f} ms\n")
    print(render_ranked(result.snippets))


if __name__ == "__main__":
    main()
