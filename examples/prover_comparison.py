#!/usr/bin/env python3
"""Prover shootout: succinct engine vs G4ip vs the inverse method.

Reproduces the flavour of Table 2's last columns: the same inhabitation
query (as an intuitionistic sequent) is decided by InSynth's succinct
engine and by the two general-prover baselines, on environments of growing
size.  The specialised engine's advantage grows with the environment — the
paper's core performance claim.

Run:  python examples/prover_comparison.py
"""

from repro.bench.runner import run_provers
from repro.bench.suite import benchmark_by_number
from repro.bench.reporting import format_prover_table


def main() -> None:
    print("query: the Table 2 benchmark #44 inhabitation problem")
    print("(goal SequenceInputStream; environment scaled by distractor cap)\n")

    comparisons = []
    for cap in (50, 150, 400):
        comparison = run_provers(benchmark_by_number(44), time_limit=5.0,
                                 import_cap=cap)
        comparisons.append(comparison)
        print(f"  cap={cap:>4}: {comparison.hypothesis_count} hypotheses -> "
              f"succinct {comparison.succinct.milliseconds:.1f} ms, "
              f"g4ip {_cell(comparison.g4ip)}, "
              f"inverse {_cell(comparison.inverse)}")

    print()
    print(format_prover_table(comparisons))
    print("\nAll engines agree on provability; the goal-directed succinct")
    print("engine degrades mildly with size, the saturating baselines fast.")


def _cell(result) -> str:
    return "timeout" if result.timed_out else f"{result.milliseconds:.1f} ms"


if __name__ == "__main__":
    main()
