"""Table 2, full algorithm: all 50 benchmarks, measured vs published.

Regenerates the paper's main table for the full variant (weights + corpus):
goal-snippet rank, prover/reconstruction/total times — and asserts the
headline shape: the expected snippet lands in the top ten on >= 90 % of the
rows (paper: 96 %) and at rank one on >= 50 % (paper: 64 %).  Also writes
machine-readable artefacts to ``benchmarks/out/``.
"""

from pathlib import Path

from repro.bench.export import write_csv, write_json
from repro.bench.reporting import format_table, summarize

OUT_DIR = Path(__file__).parent / "out"


def test_table2_full_variant(benchmark, suite_results):
    summary = benchmark.pedantic(lambda: summarize(suite_results),
                                 rounds=1, iterations=1)

    print("\n=== Table 2 (measured; 'paper' column = published full rank) ===")
    print(format_table(suite_results))
    print()
    print(summary.as_text())

    # Per-row latency sanity *before* touching benchmarks/out/: a single
    # measurement glitch (a multi-second outlier from OS scheduling noise)
    # must fail loudly without overwriting the committed artefacts —
    # averaging it away or writing it to disk first would both let it land.
    glitches = [(result.spec.number, round(result.outcomes["full"].total_ms, 1))
                for result in suite_results
                if "full" in result.outcomes
                and result.outcomes["full"].total_ms >= 1000.0]
    if not glitches:
        OUT_DIR.mkdir(exist_ok=True)
        write_csv(suite_results, OUT_DIR / "table2.csv")
        write_json(suite_results, OUT_DIR / "table2.json")
        print(f"\nmachine-readable results: {OUT_DIR / 'table2.csv'}")
    assert not glitches, (
        f"per-row total_ms glitches (row, ms): {glitches}; artefacts not "
        "written — re-run on an idle machine before committing")

    total = summary.benchmarks
    assert summary.full_top10 / total >= 0.90
    assert summary.full_rank1 / total >= 0.50
    # Interactive latency: sub-second on average, as in the paper.
    assert summary.mean_total_full_ms < 1000.0
