"""Table 2, ablation columns: No weights / No corpus / All.

The paper's central ablation: without weights the goal snippet is found in
the top ten on only a handful of rows; locality weights alone recover most
of the quality; corpus frequencies close the rest.  Asserts the ordering

    found(no_weights)  <<  found(no_corpus)  <=  found(full)

and that the no-weights variant finds at most half the rows.
"""

from repro.bench.reporting import summarize


def _found(results, variant):
    return sum(1 for result in results
               if result.outcomes[variant].rank is not None)


def _rank_text(rank):
    return ">10" if rank is None else str(rank)


def test_table2_variant_ablation(benchmark, suite_results):
    counts = benchmark.pedantic(
        lambda: {variant: _found(suite_results, variant)
                 for variant in ("no_weights", "no_corpus", "full")},
        rounds=1, iterations=1)

    print("\n=== Table 2 ablation: rank of the goal snippet per variant ===")
    header = (f"{'#':>3} {'benchmark':<38} {'no-weights':>11} "
              f"{'no-corpus':>10} {'full':>6}")
    print(header)
    print("-" * len(header))
    for result in suite_results:
        print(f"{result.spec.number:>3} {result.spec.name[:38]:<38} "
              f"{_rank_text(result.outcomes['no_weights'].rank):>11} "
              f"{_rank_text(result.outcomes['no_corpus'].rank):>10} "
              f"{_rank_text(result.outcomes['full'].rank):>6}")

    total = len(suite_results)
    print(f"\nfound in top 10: no-weights {counts['no_weights']}/{total} "
          f"(paper 4/50), no-corpus {counts['no_corpus']}/{total} "
          f"(paper 48/50), full {counts['full']}/{total} (paper 48/50)")
    print(summarize(suite_results).as_text())

    assert counts["no_weights"] <= total // 2, \
        "the no-weights ablation should fail on most benchmarks"
    assert counts["no_corpus"] >= total - 5
    assert counts["full"] >= counts["no_corpus"]
    assert counts["no_weights"] < counts["no_corpus"]


def test_table2_no_weights_quality(benchmark, suite_results):
    """Where the no-weights variant finds the goal at all, it ranks it no
    better than the full variant on average.

    Note on the paper's timing claim: the published no-weights variant also
    ran an order of magnitude slower.  Our reconstruction bounds every
    partial expression by its cheapest completion, which tames the
    tie-flood that uniform weights cause, so the slowdown does not
    reproduce here — the quality collapse (the rank columns) does, and is
    the claim this bench asserts.  Work done per variant is reported for
    transparency.
    """

    def mean_rank(variant, miss_penalty=11):
        # A miss counts as rank N+1, avoiding survivorship bias on rows the
        # weak variant happens to solve.
        ranks = [result.outcomes[variant].rank or miss_penalty
                 for result in suite_results]
        return sum(ranks) / len(ranks)

    ranks = benchmark.pedantic(
        lambda: {variant: mean_rank(variant)
                 for variant in ("no_weights", "full")},
        rounds=1, iterations=1)

    def work(variant):
        return sum(result.outcomes[variant].recon_expansions
                   for result in suite_results)

    print(f"\nmean rank (miss = 11): no-weights {ranks['no_weights']:.2f}, "
          f"full {ranks['full']:.2f}")
    print(f"reconstruction expansions: "
          f"no-weights {work('no_weights')}, full {work('full')}")
    assert ranks["no_weights"] > ranks["full"]
