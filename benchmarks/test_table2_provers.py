"""Table 2, prover columns: succinct engine vs Imogen/fCube stand-ins.

Times three engines on identical provability queries (the Curry-Howard
sequent of each benchmark): InSynth's succinct-calculus prover, the
inverse-method baseline (Imogen's proof-search family) and the G4ip
sequent baseline (fCube's family).

General provers blow up on multi-thousand-hypothesis sequents — the paper
reports fCube timings up to 99 seconds — so by default the generated
distractor ballast is capped per query (the modelled JDK surface is always
kept).  Set ``REPRO_PROVER_CAP`` to change the cap, ``REPRO_PROVER_ROWS``
to choose rows.

Shape asserted: all engines agree on provability; the succinct engine is
fastest on aggregate, by an order of magnitude or more over the slower
baseline (paper: 2 orders vs Imogen, 4 vs fCube).
"""

import os

from repro.bench.reporting import format_prover_table
from repro.bench.runner import run_provers
from repro.bench.suite import benchmark_by_number

DEFAULT_ROWS = (2, 9, 15, 22, 25, 28, 33, 40, 44, 50)


def _rows():
    raw = os.environ.get("REPRO_PROVER_ROWS", "").strip()
    if not raw:
        return DEFAULT_ROWS
    if raw == "all":
        return tuple(range(1, 51))
    return tuple(int(part) for part in raw.split(","))


def _cap():
    raw = os.environ.get("REPRO_PROVER_CAP", "").strip()
    return int(raw) if raw else 300


def test_table2_prover_comparison(benchmark):
    rows = _rows()
    cap = _cap()

    def run_all():
        return [run_provers(benchmark_by_number(number), time_limit=5.0,
                            import_cap=cap)
                for number in rows]

    comparisons = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print(f"\n=== Prover comparison (distractor cap {cap}, "
          f"5 s timeout) ===")
    print(format_prover_table(comparisons))

    # Verdict agreement wherever nobody timed out.
    for comparison in comparisons:
        verdicts = {result.provable for result in comparison.results()
                    if not result.timed_out}
        assert len(verdicts) <= 1, f"provers disagree on #{comparison.spec_number}"

    def mean_ms(picker):
        values = [picker(c).milliseconds for c in comparisons]
        return sum(values) / len(values)

    succinct = mean_ms(lambda c: c.succinct)
    slowest_baseline = max(
        mean_ms(lambda c: c.inverse), mean_ms(lambda c: c.g4ip))
    print(f"\nmean: succinct {succinct:.1f} ms, slowest baseline "
          f"{slowest_baseline:.1f} ms ({slowest_baseline / succinct:.0f}x)")

    assert succinct < mean_ms(lambda c: c.g4ip)
    assert slowest_baseline / succinct >= 10.0, \
        "the specialised engine should win by at least an order of magnitude"
