"""Multi-worker serving throughput: processes must beat threads.

The async server's thread executor only keeps the event loop responsive —
pure-Python synthesis holds the GIL, so a single-worker server serialises
cold traffic no matter how many threads it has.  ``ServerConfig.workers``
fans cache-miss syntheses out over the engine's process-pool worker
(`_execute_remote`), which is what actually adds CPU throughput.

This load test drives one identical batch of distinct cold queries through
a single-worker (threads-only) server and a multi-worker server and
asserts the multi-worker wall clock wins.  Auto-marked ``slow`` by the
benchmarks conftest; skipped outright where the sandbox cannot fork a
process pool.
"""

import asyncio
import os
import random
import time

import pytest

from repro.server.client import AsyncCompletionClient
from repro.server.server import AsyncCompletionServer, ServerConfig

#: Queries per timed round — distinct keys, so nothing caches or coalesces.
QUERIES = 24

#: Snippets per query; scales reconstruction work per query.
SNIPPETS = 40

WORKERS = min(4, max(2, os.cpu_count() or 1))


def _scene_text(declarations: int = 2500, bases: int = 150,
                seed: int = 7) -> str:
    """A deterministic multi-thousand-declaration scene.

    Random curried signatures over a moderately sparse base-type alphabet
    give every goal a real search space (~150 explored requests, tens of
    milliseconds per query) without any goal being uninhabited.
    """
    rng = random.Random(seed)
    types = [f"T{i}" for i in range(bases)]
    lines = ["local seed0 : T0", "local seed1 : T1"]
    for i in range(declarations):
        arity = rng.choice([1, 1, 2, 2, 3, 3, 4])
        signature = " -> ".join([rng.choice(types) for _ in range(arity)]
                                + [rng.choice(types)])
        lines.append(f"imported gen.m{i} : {signature} "
                     f"[freq={rng.randint(0, 200)}] [style=function] "
                     f"[display=m{i}]")
    lines.append("goal T2")
    return "\n".join(lines) + "\n"


def _pool_available() -> bool:
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(int, 1).result(timeout=30) == 1
    except Exception:                       # noqa: BLE001 — capability probe
        return False


async def _timed_round(server: AsyncCompletionServer, text: str,
                       n_offset: int) -> tuple[float, list]:
    """Register the scene, warm the executor, then time QUERIES misses."""
    client = AsyncCompletionClient(server.host, server.port, timeout=120.0)
    try:
        registered = await client.register_scene(text, name="load")
        scene_id = registered["scene_id"]
        # Warm-up: every pool worker prepares the scene once (threads-only
        # servers warm their per-policy synthesizer the same way).
        await asyncio.gather(
            *(client.complete(scene_id, goal=f"T{3 + i}", n=2)
              for i in range(max(WORKERS * 2, 4))))
        start = time.perf_counter()
        results = await asyncio.gather(
            *(client.complete(scene_id, goal=f"T{3 + i}", n=n_offset)
              for i in range(QUERIES)))
        elapsed = time.perf_counter() - start
        assert all(not r["cache_hit"] and not r["coalesced"]
                   for r in results), "timed round must be all cold misses"
        return elapsed, results
    finally:
        await client.close()


async def _run_comparison() -> dict:
    text = _scene_text()

    threaded_server = AsyncCompletionServer(config=ServerConfig(
        port=0, max_pending=256, workers=1))
    await threaded_server.start()
    try:
        threaded_seconds, threaded_results = await _timed_round(
            threaded_server, text, SNIPPETS)
    finally:
        await threaded_server.close()

    pooled_server = AsyncCompletionServer(config=ServerConfig(
        port=0, max_pending=256, workers=WORKERS))
    await pooled_server.start()
    try:
        if pooled_server._pool is None:
            pytest.skip("process pool unavailable in this environment")
        pooled_seconds, pooled_results = await _timed_round(
            pooled_server, text, SNIPPETS)
    finally:
        await pooled_server.close()

    # Both servers must serve byte-identical rankings for every query.
    for threaded, pooled in zip(threaded_results, pooled_results):
        assert threaded["snippets"] == pooled["snippets"]
        assert threaded["goal"] == pooled["goal"]
    return {"threaded": threaded_seconds, "pooled": pooled_seconds}


def test_multiworker_throughput_beats_single_worker():
    if (os.cpu_count() or 1) < 2:
        pytest.skip("multi-worker throughput needs more than one CPU")
    if not _pool_available():
        pytest.skip("process pool unavailable in this environment")
    report = asyncio.run(_run_comparison())
    speedup = report["threaded"] / report["pooled"]
    print(f"\n{QUERIES} cold queries: single-worker "
          f"{report['threaded'] * 1000:.0f} ms, {WORKERS}-worker "
          f"{report['pooled'] * 1000:.0f} ms ({speedup:.2f}x)")
    assert report["pooled"] < report["threaded"], (
        f"{WORKERS}-worker round ({report['pooled']:.2f}s) should beat the "
        f"single-worker round ({report['threaded']:.2f}s)")
