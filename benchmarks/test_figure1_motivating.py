"""Figure 1: the motivating SequenceInputStream completion.

Regenerates the paper's headline interaction: at a cursor expecting a
``SequenceInputStream`` with >3000 declarations visible, the five best
suggestions appear in a fraction of a second and include the intended
snippet.  The bench times one full synthesis (prove + reconstruct).
"""

from repro.core.synthesizer import Synthesizer
from repro.lang.printer import render_ranked


def test_figure1_synthesis(benchmark, figure1_scene):
    scene = figure1_scene
    synthesizer = Synthesizer(scene.environment, subtypes=scene.subtypes)

    result = benchmark.pedantic(
        lambda: synthesizer.synthesize(scene.goal, n=5),
        rounds=5, iterations=1, warmup_rounds=1)

    codes = [snippet.code for snippet in result.snippets]
    print("\n=== Figure 1: InSynth suggestions "
          f"({scene.initial_count} declarations visible) ===")
    print(render_ranked(result.snippets))
    print(f"prove {result.prove_seconds * 1000:.0f} ms + "
          f"recon {result.reconstruction_seconds * 1000:.0f} ms "
          f"(paper: < 250 ms total)")

    assert len(codes) == 5
    assert "new SequenceInputStream(body, sig)" in codes
    assert result.total_seconds < 2.5
