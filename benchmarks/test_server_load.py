"""Load benchmark for the async completion server.

Auto-marked ``slow`` by the benchmarks conftest, so CI runs it in the
non-blocking telemetry job.  Asserts the ISSUE-2 serving targets:

* warm-path (cache hit / coalesced) p95 latency under 50 ms;
* a burst of identical cold requests costs exactly one synthesis;
* the event loop never stalls longer than one synthesis timeout while
  cold synthesis traffic is in flight (executor offload works).
"""

import asyncio
import time
from pathlib import Path

from repro.server.client import AsyncCompletionClient
from repro.server.server import AsyncCompletionServer, ServerConfig

SCENES_DIR = Path(__file__).resolve().parents[1] / "examples/scenes"

#: One synthesis timeout under paper budgets (0.5 s prover + 7 s recon).
SYNTHESIS_TIMEOUT_S = 7.5

WARM_REQUESTS = 400
BURST = 100


class _LoopStallProbe:
    """Samples event-loop responsiveness: max observed scheduling drift."""

    def __init__(self, interval: float = 0.005):
        self.interval = interval
        self.max_stall = 0.0
        self._task = None

    async def _tick(self):
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(self.interval)
            stall = (loop.time() - before) - self.interval
            if stall > self.max_stall:
                self.max_stall = stall

    def start(self):
        self._task = asyncio.ensure_future(self._tick())

    async def stop(self):
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass


async def _run_load() -> dict:
    server = AsyncCompletionServer(config=ServerConfig(
        port=0, max_pending=128, max_scenes=16))
    await server.start()
    client = AsyncCompletionClient(server.host, server.port)
    probe = _LoopStallProbe()
    try:
        scene_ids = []
        for path in sorted(SCENES_DIR.glob("*.ins")):
            registered = await client.register_scene(
                path.read_text(encoding="utf-8"), name=path.name)
            scene_ids.append(registered["scene_id"])
        assert scene_ids, "no shipped example scenes found"

        probe.start()

        # Cold phase: distinct (scene, n) keys, all misses, all synthesized
        # on the executor while the probe watches the loop.
        cold_start = time.perf_counter()
        cold = await asyncio.gather(
            *(client.complete(scene_id, n=n)
              for scene_id in scene_ids
              for n in range(1, 11)))
        cold_seconds = time.perf_counter() - cold_start
        assert all(r["snippets"] for r in cold)

        # Warm phase: hammer the now-cached keys concurrently.
        warm_start = time.perf_counter()
        warm = await asyncio.gather(
            *(client.complete(scene_ids[i % len(scene_ids)],
                              n=1 + (i % 10))
              for i in range(WARM_REQUESTS)))
        warm_seconds = time.perf_counter() - warm_start
        assert all(r["cache_hit"] or r["coalesced"] for r in warm)

        # Coalescing burst: one fresh key, many concurrent callers.
        before = (await client.stats())["server"]
        await asyncio.gather(
            *(client.complete(scene_ids[0], n=25) for _ in range(BURST)))
        after = (await client.stats())["server"]

        await probe.stop()
        stats = await client.stats()
        return {
            "stats": stats,
            "cold_count": len(cold),
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "burst_synthesized": after["synthesized"] - before["synthesized"],
            "burst_coalesced": after["coalesced"] - before["coalesced"],
            "burst_hits": after["cache_hits"] - before["cache_hits"],
            "max_stall": probe.max_stall,
        }
    finally:
        await probe.stop()
        await client.close()
        await server.close()


def test_server_load_targets():
    report = asyncio.run(_run_load())
    server_stats = report["stats"]["server"]
    warm_latency = server_stats["latency"]["warm"]

    print(f"\nserver load: {report['cold_count']} cold in "
          f"{report['cold_seconds'] * 1000:.0f} ms, "
          f"{WARM_REQUESTS} warm in {report['warm_seconds'] * 1000:.0f} ms")
    print(f"warm latency: p50 {warm_latency['p50_ms']} ms, "
          f"p95 {warm_latency['p95_ms']} ms, max {warm_latency['max_ms']} ms")
    print(f"burst: {BURST} identical -> {report['burst_synthesized']} "
          f"synthesis, {report['burst_coalesced']} coalesced, "
          f"{report['burst_hits']} hits")
    print(f"max event-loop stall: {report['max_stall'] * 1000:.1f} ms; "
          f"queue peak {server_stats['queue']['peak']}")

    # ISSUE 2 acceptance targets.
    assert warm_latency["p95_ms"] is not None
    assert warm_latency["p95_ms"] < 50.0, (
        f"warm p95 {warm_latency['p95_ms']} ms exceeds the 50 ms target")
    assert report["burst_synthesized"] == 1
    assert (report["burst_coalesced"] + report["burst_hits"]) == BURST - 1
    assert report["max_stall"] < SYNTHESIS_TIMEOUT_S, (
        f"event loop stalled {report['max_stall']:.2f}s — executor offload "
        f"is not protecting the loop")
    assert server_stats["rejected_overload"] == 0
