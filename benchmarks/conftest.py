"""Shared fixtures for the benchmark harness.

The Table 2 suite run (50 scenes x 3 variants) is expensive, so it is
computed once per session and shared by every bench that reports on it.
Set ``REPRO_BENCH_ROWS`` to a comma-separated list of benchmark numbers to
restrict the run (e.g. ``REPRO_BENCH_ROWS=9,15,44`` for a smoke pass).

Timings follow the repo's re-baselining convention (see
``repro.bench.core_bench``): each row reports the median over
``REPRO_BENCH_REPEATS`` synthesis runs (default 3), so a single OS
scheduling glitch cannot land in the committed ``benchmarks/out/``
artefacts.
"""

import os

import pytest

from repro.bench.runner import run_suite


def pytest_collection_modifyitems(items):
    """Mark every test under ``benchmarks/`` as ``slow``.

    CI runs the blocking job with ``-m "not slow"`` and pushes this whole
    directory into a separate non-blocking job; a plain ``pytest`` still
    collects and runs everything.  (This hook sees the whole session's
    items, so filter to this directory.)
    """
    here = os.path.dirname(os.path.abspath(__file__))
    for item in items:
        if str(item.fspath).startswith(here):
            item.add_marker(pytest.mark.slow)


def _selected_rows():
    raw = os.environ.get("REPRO_BENCH_ROWS", "").strip()
    if not raw:
        return None
    return [int(part) for part in raw.split(",") if part.strip()]


def _timing_repeats():
    raw = os.environ.get("REPRO_BENCH_REPEATS", "").strip()
    return int(raw) if raw else 3


@pytest.fixture(scope="session")
def suite_results():
    """All Table 2 rows under all three variants (cached per session)."""
    return run_suite(numbers=_selected_rows(), n=10,
                     timing_repeats=_timing_repeats())


@pytest.fixture(scope="session")
def figure1_scene():
    from repro.javamodel.scenes import sequence_of_streams_scene

    return sequence_of_streams_scene()
