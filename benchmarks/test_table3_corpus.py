"""Table 3 / §7.3: the usage corpus and its published marginals.

Regenerates the corpus over the Table 3 project registry and checks the
exact published statistics: 7,516 distinct declarations, 90,422 total uses,
a 5,162-use maximum (``&&``), and >= 98 % of declarations under 100 uses.
The bench times the mining pass (event streams -> frequency table).
"""

from repro.corpus.mining import mine_frequencies
from repro.corpus.projects import CORPUS_PROJECTS, all_projects
from repro.corpus.synthetic import (PAPER_DISTINCT_DECLARATIONS,
                                    PAPER_MAX_USES, PAPER_MOST_USED,
                                    PAPER_TOTAL_USES, default_corpus)
from repro.javamodel.jdk import shared_jdk


def test_table3_corpus_statistics(benchmark):
    corpus = default_corpus(shared_jdk())
    events = corpus.events_by_project()

    table = benchmark.pedantic(lambda: mine_frequencies(events),
                               rounds=3, iterations=1)
    summary = table.summary()

    print("\n=== Table 3: corpus projects ===")
    for project in CORPUS_PROJECTS:
        print(f"  {project.name:<24} {project.description}")
    print(f"  (+ Scala standard library, analysed separately in §7.3)")

    print("\n=== §7.3 corpus marginals: measured vs paper ===")
    print(f"  distinct declarations: {summary.distinct_declarations} "
          f"(paper {PAPER_DISTINCT_DECLARATIONS})")
    print(f"  total uses:            {summary.total_uses} "
          f"(paper {PAPER_TOTAL_USES})")
    print(f"  max uses:              {summary.max_uses} for "
          f"{summary.most_used_symbol} (paper {PAPER_MAX_USES} for &&)")
    print(f"  under 100 uses:        "
          f"{summary.fraction_under_100 * 100:.1f}% (paper: 98%)")
    print("\n  ten most used symbols:")
    for symbol, count in table.most_common(10):
        print(f"    {count:>6}  {symbol}")

    assert summary.distinct_declarations == PAPER_DISTINCT_DECLARATIONS
    assert summary.total_uses == PAPER_TOTAL_USES
    assert summary.max_uses == PAPER_MAX_USES
    assert summary.most_used_symbol == PAPER_MOST_USED
    assert summary.fraction_under_100 >= 0.98
    assert len(events) == len(all_projects())
