"""Sharded-router throughput: two backend processes must beat one.

The router's value proposition is process-level parallelism without wire
changes: each backend is its own interpreter, so cold syntheses on
different shards run on different cores — the multi-process sibling of
``test_server_workers.py``'s in-server pool comparison.

This load test builds several distinct scenes (distinct content ⇒
distinct scene ids ⇒ spread over the ring), drives one identical batch
of cold queries through a 1-backend router and a 2-backend router, and
asserts the sharded wall clock wins while both serve byte-identical
rankings.  Auto-marked ``slow`` by the benchmarks conftest; skipped on
single-CPU machines and wherever subprocess spawning is unavailable.
"""

import asyncio
import os
import random
import time

import pytest

from repro.server.client import AsyncCompletionClient
from repro.server.router import CompletionRouter, RouterConfig

#: Distinct scenes; each contributes QUERIES_PER_SCENE cold queries.
SCENES = 6

QUERIES_PER_SCENE = 4

#: Snippets per query; scales reconstruction work.
SNIPPETS = 40


def _scene_text(seed: int, declarations: int = 1200,
                bases: int = 120) -> str:
    """A deterministic mid-size scene; different seeds give different
    content and therefore different scene ids (the sharding keys)."""
    rng = random.Random(seed)
    types = [f"T{i}" for i in range(bases)]
    lines = ["local seed0 : T0", "local seed1 : T1"]
    for i in range(declarations):
        arity = rng.choice([1, 1, 2, 2, 3, 3, 4])
        signature = " -> ".join([rng.choice(types) for _ in range(arity)]
                                + [rng.choice(types)])
        lines.append(f"imported gen.m{i} : {signature} "
                     f"[freq={rng.randint(0, 200)}] [style=function] "
                     f"[display=m{i}]")
    lines.append("goal T2")
    return "\n".join(lines) + "\n"


async def _timed_round(router: CompletionRouter, texts: list,
                       n_offset: int) -> tuple[float, list]:
    """Register every scene, warm the executors, then time cold misses."""
    client = AsyncCompletionClient(router.host, router.port, timeout=300.0)
    try:
        scene_ids = []
        for index, text in enumerate(texts):
            registered = await client.register_scene(text,
                                                     name=f"load{index}")
            scene_ids.append(registered["scene_id"])
        # Warm-up: one small query per scene readies every backend's
        # synthesizer without touching the timed keys.
        await asyncio.gather(
            *(client.complete(scene_id, goal="T3", n=2)
              for scene_id in scene_ids))
        start = time.perf_counter()
        results = await asyncio.gather(
            *(client.complete(scene_id, goal=f"T{4 + query}", n=n_offset)
              for scene_id in scene_ids
              for query in range(QUERIES_PER_SCENE)))
        elapsed = time.perf_counter() - start
        assert all(not r["cache_hit"] and not r["coalesced"]
                   for r in results), "timed round must be all cold misses"
        return elapsed, results
    finally:
        await client.close()


async def _run_comparison(tmp_path) -> dict:
    texts = [_scene_text(seed) for seed in range(SCENES)]
    report = {}
    results_by_backends = {}
    for backends in (1, 2):
        router = CompletionRouter(RouterConfig(
            port=0, backends=backends,
            journal_path=str(tmp_path / f"journal-{backends}.jsonl")))
        await router.start()
        try:
            elapsed, results = await _timed_round(router, texts, SNIPPETS)
            report[backends] = elapsed
            results_by_backends[backends] = results
            if backends == 2:
                counts = [0, 0]
                for entry in router.journal.entries():
                    shard = router.ring.route(entry.scene_id)
                    counts[int(shard == "b1")] += 1
                if 0 in counts:
                    pytest.skip(f"degenerate shard split {counts} for "
                                f"this scene set")
        finally:
            await router.close()

    # Sharding must never change results: byte-identical rankings.
    for single, sharded in zip(results_by_backends[1],
                               results_by_backends[2]):
        assert single["snippets"] == sharded["snippets"]
        assert single["goal"] == sharded["goal"]
    return report


def test_sharded_router_beats_single_backend(tmp_path):
    if (os.cpu_count() or 1) < 2:
        pytest.skip("sharded throughput needs more than one CPU")
    report = asyncio.run(_run_comparison(tmp_path))
    speedup = report[1] / report[2]
    total = SCENES * QUERIES_PER_SCENE
    print(f"\n{total} cold queries: 1-backend router "
          f"{report[1] * 1000:.0f} ms, 2-backend router "
          f"{report[2] * 1000:.0f} ms ({speedup:.2f}x)")
    assert report[2] < report[1], (
        f"2-backend round ({report[2]:.2f}s) should beat the 1-backend "
        f"round ({report[1]:.2f}s)")
