"""Ablation benches for the design choices DESIGN.md calls out.

* weighted-priority vs FIFO exploration (§5.6's responsiveness argument);
* interleaved vs batch pattern generation (§5.6);
* coercion weight (Table 1's 10) vs an expensive-coercion variant (§6);
* the completion-bound lookahead in reconstruction (the transitively
  applied "type weights guide the search" of §4).
"""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.reconstruct import Reconstructor
from repro.core.synthesizer import Synthesizer
from repro.core.weights import WeightPolicy
from repro.bench.suite import benchmark_by_number, build_scene


@pytest.fixture(scope="module")
def display_mode_scene():
    return build_scene(benchmark_by_number(13))


def test_ablation_exploration_discipline(benchmark, figure1_scene):
    """Priority exploration reaches the goal-relevant space no slower than
    FIFO and produces identical pattern sets (completeness)."""
    scene = figure1_scene

    def run(prioritised):
        synthesizer = Synthesizer(
            scene.environment,
            config=SynthesisConfig(prioritised_exploration=prioritised),
            subtypes=scene.subtypes)
        return synthesizer.prove(scene.goal)

    space_priority, patterns_priority = benchmark.pedantic(
        lambda: run(True), rounds=3, iterations=1)
    space_fifo, patterns_fifo = run(False)

    print("\n=== Ablation: exploration discipline ===")
    print(f"  priority: {len(space_priority.order)} nodes, "
          f"{len(patterns_priority)} patterns, "
          f"{space_priority.elapsed_seconds * 1000:.0f} ms")
    print(f"  fifo:     {len(space_fifo.order)} nodes, "
          f"{len(patterns_fifo)} patterns, "
          f"{space_fifo.elapsed_seconds * 1000:.0f} ms")

    assert patterns_priority.patterns == patterns_fifo.patterns
    assert len(space_priority.order) == len(space_fifo.order)


def test_ablation_interleaved_patterns(benchmark, figure1_scene):
    """§5.6 interleaving must not change results; timings are comparable."""
    scene = figure1_scene

    def run(interleaved):
        synthesizer = Synthesizer(
            scene.environment,
            config=SynthesisConfig(interleaved=interleaved),
            subtypes=scene.subtypes)
        return synthesizer.synthesize(scene.goal, n=5)

    interleaved = benchmark.pedantic(lambda: run(True), rounds=3,
                                     iterations=1)
    batch = run(False)

    print("\n=== Ablation: interleaved vs batch pattern generation ===")
    print(f"  interleaved: prove {interleaved.prove_seconds * 1000:.0f} ms")
    print(f"  batch:       prove {batch.prove_seconds * 1000:.0f} ms")
    assert [s.code for s in interleaved.snippets] == \
        [s.code for s in batch.snippets]


def test_ablation_coercion_weight(benchmark):
    """Cheap coercions (Table 1: 10) are what let subtype-mediated snippets
    compete; pricing them like imports buries ``panel.getLayout()``."""
    from repro.javamodel.scenes import drawing_layout_scene

    scene = drawing_layout_scene()

    def rank_with(coercion_weight):
        policy = WeightPolicy.standard().with_constants(
            coercion_weight=coercion_weight)
        synthesizer = Synthesizer(scene.environment, policy=policy,
                                  subtypes=scene.subtypes)
        result = synthesizer.synthesize(scene.goal, n=10)
        for snippet in result.snippets:
            if snippet.code == "panel.getLayout()":
                return snippet.rank
        return None

    cheap = benchmark.pedantic(lambda: rank_with(10.0), rounds=1,
                               iterations=1)
    pricey = rank_with(500.0)

    print("\n=== Ablation: coercion weight (drawing-layout scene) ===")
    print(f"  weight 10 (paper):  rank {cheap}")
    print(f"  weight 500:         rank {pricey}")
    assert cheap is not None and cheap <= 3
    assert pricey is None or pricey > cheap


def test_ablation_completion_bound_depth(benchmark, display_mode_scene):
    """Without the completion-bound lookahead the four-int-hole benchmark
    expands orders of magnitude more states (the 'int flood')."""
    scene = display_mode_scene
    synthesizer = Synthesizer(scene.environment, subtypes=scene.subtypes)
    space, patterns = synthesizer.prove(scene.goal)

    def expansions(depth):
        reconstructor = Reconstructor(patterns, synthesizer.environment,
                                      synthesizer.policy,
                                      max_steps=120_000, time_limit=10.0)
        reconstructor._HEURISTIC_DEPTH = depth
        emitted = 0
        for _snippet in reconstructor.enumerate(scene.goal):
            emitted += 1
            if emitted >= 10:
                break
        return reconstructor.stats.expansions

    with_bound = benchmark.pedantic(lambda: expansions(4), rounds=1,
                                    iterations=1)
    without_bound = expansions(0)

    print("\n=== Ablation: completion-bound lookahead (DisplayMode row) ===")
    print(f"  depth 4: {with_bound} expansions for 10 snippets")
    print(f"  depth 0: {without_bound} expansions (zero-weight holes)")
    assert with_bound * 5 <= without_bound, \
        "the admissible bound should prune the frontier dramatically"
