"""Table 2 / §7.5 aggregates: measured vs published headline numbers.

The paper's summary claims: expected snippets in the top ten on 48/50
benchmarks (96 %), at rank one on 32/50 (64 %), average full-variant time
around 145 ms, no-weights finding only 4/50, no-corpus failing just 2/50.
"""

from repro.bench.goldens import paper_summary
from repro.bench.reporting import summarize


def test_section_7_5_summary(benchmark, suite_results):
    summary = benchmark.pedantic(lambda: summarize(suite_results),
                                 rounds=1, iterations=1)
    paper = paper_summary()

    print("\n=== §7.5 headline numbers: measured vs paper ===")
    total = summary.benchmarks
    print(f"{'metric':<28} {'measured':>12} {'paper':>10}")
    print(f"{'top-10 (full)':<28} "
          f"{summary.full_top10 / total * 100:>11.0f}% "
          f"{paper['full_top10_fraction'] * 100:>9.0f}%")
    print(f"{'rank-1 (full)':<28} "
          f"{summary.full_rank1 / total * 100:>11.0f}% "
          f"{paper['full_rank1_fraction'] * 100:>9.0f}%")
    print(f"{'mean total (full, ms)':<28} "
          f"{summary.mean_total_full_ms:>12.1f} "
          f"{paper['mean_total_full_ms']:>10.0f}")
    if summary.no_weights_found is not None:
        print(f"{'no-weights found':<28} "
              f"{summary.no_weights_found:>12} "
              f"{paper['no_weights_found']:>10.0f}")
    if summary.no_corpus_found is not None:
        print(f"{'no-corpus failed':<28} "
              f"{total - summary.no_corpus_found:>12} "
              f"{paper['no_corpus_failed']:>10.0f}")

    assert summary.full_top10 / total >= 0.90
    assert summary.full_rank1 / total >= 0.50
    assert summary.mean_total_full_ms < 1000.0
