"""§3.2: succinct-type compression of the Figure 1 environment.

The paper reports that the 3,356 declarations visible in the Figure 1
scene collapse to 1,783 succinct types under sigma — the reduction that
shrinks the exploration space.  The bench times the conversion and checks
that a substantial reduction happens on our synthetic environment.
"""

from repro.core.succinct import compression_ratio
from repro.javamodel.scenes import FIGURE1_SUCCINCT_TYPES


def test_succinct_compression(benchmark, figure1_scene):
    types = [decl.type for decl in figure1_scene.environment]

    total, distinct = benchmark(compression_ratio, types)

    print(f"\n=== §3.2 sigma compression (Figure 1 environment) ===")
    print(f"  declarations:        {total} (paper 3356)")
    print(f"  succinct types:      {distinct} "
          f"(paper {FIGURE1_SUCCINCT_TYPES})")
    print(f"  ratio:               {distinct / total:.2f} "
          f"(paper {FIGURE1_SUCCINCT_TYPES / 3356:.2f})")

    assert total == 3356
    assert distinct < total * 0.8, "sigma should merge a substantial share"
    assert distinct >= 1000, "the environment should remain diverse"
