"""Engine serving benchmarks: warm-cache speedup and direct parity.

Two properties anchor the :mod:`repro.engine` serving layer:

* **speedup** — once a (scene, goal, policy, budgets) query has been
  served, re-serving it must come from the LRU result cache and beat a
  cold :class:`~repro.core.synthesizer.Synthesizer` run by well over the
  5x the roadmap demands (in practice it is orders of magnitude);
* **parity** — engine-served snippets are byte-identical (term, surface
  term, weight, rank, rendered code) to what a direct ``synthesize`` call
  over the same scene produces, on every Table 2 scene.

Set ``REPRO_BENCH_ROWS`` to restrict the parity sweep.
"""

import os
import time

from repro.bench.runner import scene_for
from repro.bench.suite import BENCHMARKS, benchmark_by_number
from repro.core.config import SynthesisConfig
from repro.core.synthesizer import Synthesizer
from repro.core.weights import WeightPolicy
from repro.engine import CompletionEngine

SPEEDUP_ROW = 9  # DatagramSocket — a mid-weight scene
REQUIRED_SPEEDUP = 5.0


def _rows():
    raw = os.environ.get("REPRO_BENCH_ROWS", "").strip()
    if not raw:
        return tuple(spec.number for spec in BENCHMARKS)
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _snippet_identity(result):
    return [(s.term, s.surface_term, s.weight, s.rank, s.code)
            for s in result.snippets]


def test_warm_cache_speedup():
    spec = benchmark_by_number(SPEEDUP_ROW)
    scene = scene_for(spec)
    engine = CompletionEngine()
    prepared = engine.prepare_scene(scene)

    # Cold: a from-scratch synthesizer, the pre-engine serving cost.
    cold_start = time.perf_counter()
    direct = Synthesizer(scene.environment,
                         policy=WeightPolicy.standard(),
                         config=SynthesisConfig.paper_defaults(),
                         subtypes=scene.subtypes).synthesize(scene.goal, n=10)
    cold_seconds = time.perf_counter() - cold_start

    # Populate, then measure repeated warm serves.
    populate = engine.complete(prepared, scene.goal, variant="full", n=10)
    assert not populate.cache_hit
    rounds = 25
    warm_start = time.perf_counter()
    for _ in range(rounds):
        served = engine.complete(prepared, scene.goal, variant="full", n=10)
        assert served.cache_hit
    warm_seconds = (time.perf_counter() - warm_start) / rounds

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    print(f"\n=== engine warm-cache speedup (row {SPEEDUP_ROW}) ===")
    print(f"cold direct synthesis: {cold_seconds * 1000:.2f} ms")
    print(f"warm engine serve:     {warm_seconds * 1000:.4f} ms")
    print(f"speedup:               {speedup:.0f}x (required >= "
          f"{REQUIRED_SPEEDUP:.0f}x)")

    assert served.result.snippets, "the warm result must carry snippets"
    assert served.result is populate.result
    assert [s.rank for s in served.result.snippets] == \
        [s.rank for s in direct.snippets]
    assert speedup >= REQUIRED_SPEEDUP


def test_engine_parity_on_all_table2_scenes():
    """Engine-served output == direct Synthesizer output, scene by scene.

    Wall-clock budgets make time-truncated runs load-sensitive, so the
    comparison uses deterministic budgets (node/step caps only) on a fresh
    engine: both sides then run the identical, reproducible pipeline.
    """
    config = SynthesisConfig.paper_defaults().with_(
        prover_time_limit=None, reconstruction_time_limit=None)
    engine = CompletionEngine(config=config)
    mismatches = []
    for number in _rows():
        spec = benchmark_by_number(number)
        scene = scene_for(spec)
        direct = Synthesizer(scene.environment,
                             policy=WeightPolicy.standard(),
                             config=config,
                             subtypes=scene.subtypes).synthesize(scene.goal,
                                                                 n=10)
        served = engine.complete(scene, scene.goal, variant="full", n=10)
        assert not served.cache_hit
        if _snippet_identity(direct) != _snippet_identity(served.result):
            mismatches.append(number)
        rerun = engine.complete(scene, scene.goal, variant="full", n=10)
        assert rerun.cache_hit and rerun.result is served.result

    print(f"\n=== engine/direct parity over {len(_rows())} Table 2 scenes "
          f"===\nmismatches: {mismatches or 'none'}")
    assert not mismatches
