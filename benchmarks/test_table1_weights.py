"""Table 1: weights for names appearing in declarations.

Table 1 is an input of the system rather than a result, so this bench
(a) prints the weight policy actually in force so it can be eyeballed
against the published table, (b) checks the imported-symbol formula
``215 + 785/(1 + f(x))`` across the observed corpus frequency range, and
(c) times weight evaluation over a realistic environment — the weight
function sits on the hot path of both exploration and reconstruction.
"""

from repro.core.environment import Declaration, DeclKind
from repro.core.types import base
from repro.core.weights import WeightPolicy
from repro.corpus.synthetic import default_frequencies

ROWS = [
    ("Lambda", DeclKind.LAMBDA, 1.0),
    ("Local", DeclKind.LOCAL, 5.0),
    ("Coercion", DeclKind.COERCION, 10.0),
    ("Class", DeclKind.CLASS_MEMBER, 20.0),
    ("Package", DeclKind.PACKAGE_MEMBER, 25.0),
    ("Literal", DeclKind.LITERAL, 200.0),
]


def test_table1_weights(benchmark, figure1_scene):
    policy = WeightPolicy.standard()

    print("\n=== Table 1: weights for declaration natures ===")
    for label, kind, expected in ROWS:
        weight = policy.declaration_weight(Declaration("d", base("T"), kind))
        print(f"  {label:<10} {weight:>8.1f}")
        assert weight == expected
    print("  Imported   215 + 785/(1 + f(x)):")
    for frequency in (0, 1, 10, 100, 1000, 5162):
        decl = Declaration("d", base("T"), DeclKind.IMPORTED,
                           frequency=frequency)
        weight = policy.declaration_weight(decl)
        print(f"    f={frequency:>5} -> {weight:>7.1f}")
        assert weight == 215.0 + 785.0 / (1 + frequency)

    # Monotonicity across the real mined-frequency range.
    table = default_frequencies()
    weights = [
        policy.declaration_weight(
            Declaration("d", base("T"), DeclKind.IMPORTED,
                        frequency=table.get(symbol)))
        for symbol, _count in table.most_common(200)
    ]
    assert weights == sorted(weights)

    # Throughput: weigh every declaration of a Figure 1-sized environment.
    declarations = list(figure1_scene.environment.declarations())

    def weigh_all():
        return sum(policy.declaration_weight(decl) for decl in declarations)

    total = benchmark(weigh_all)
    assert total > 0


def test_table1_parameter_sensitivity(benchmark):
    """Table 1's caption: "the quality of results is not highly sensitive
    to the precise values of parameters."  Perturb the locality constants
    by +/-50% on representative Table 2 rows and check the goal snippet
    stays in the top ten throughout.
    """
    from repro.bench.matching import find_rank
    from repro.bench.suite import benchmark_by_number, build_scene
    from repro.core.synthesizer import Synthesizer

    rows = (2, 15, 44)
    scenes = {number: build_scene(benchmark_by_number(number))
              for number in rows}
    perturbations = [
        {},  # published constants
        {"local_weight": 2.5, "class_weight": 10.0, "package_weight": 12.5},
        {"local_weight": 7.5, "class_weight": 30.0, "package_weight": 37.5},
        {"coercion_weight": 5.0},
        {"coercion_weight": 15.0},
        {"literal_weight": 100.0},
        {"literal_weight": 300.0},
    ]

    def sweep():
        ranks = {}
        for number in rows:
            scene = scenes[number]
            spec = benchmark_by_number(number)
            for index, overrides in enumerate(perturbations):
                policy = WeightPolicy.standard().with_constants(**overrides)
                synthesizer = Synthesizer(scene.environment, policy=policy,
                                          subtypes=scene.subtypes)
                result = synthesizer.synthesize(scene.goal, n=10)
                ranks[(number, index)] = find_rank(
                    result.snippets, spec.expected, synthesizer.environment)
        return ranks

    ranks = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n=== Table 1 sensitivity: goal rank under perturbed constants ===")
    for number in rows:
        row_ranks = [ranks[(number, index)]
                     for index in range(len(perturbations))]
        print(f"  row {number}: {row_ranks}")
        assert all(rank is not None for rank in row_ranks), \
            f"row {number} fell out of the top ten under a perturbation"
