"""§5.6 responsiveness: anytime behaviour under shrinking prover budgets.

The paper interleaves exploration with pattern generation precisely so
that a *time-limited* prover still hands reconstruction a usable pattern
set.  This bench sweeps the prover budget downward on the Figure 1 scene
and reports how many suggestions survive — the anytime curve an IDE user
experiences — asserting the two §5.6 properties: graceful degradation
(never an error, snippets monotonically non-increasing-ish) and a usable
answer already at small budgets.
"""

from repro.core.config import SynthesisConfig
from repro.core.synthesizer import Synthesizer

BUDGETS = [None, 0.5, 0.1, 0.05, 0.02, 0.01]


def test_anytime_prover_budgets(benchmark, figure1_scene):
    scene = figure1_scene

    def sweep():
        outcomes = []
        for budget in BUDGETS:
            synthesizer = Synthesizer(
                scene.environment,
                config=SynthesisConfig(prover_time_limit=budget,
                                       interleaved=True),
                subtypes=scene.subtypes)
            result = synthesizer.synthesize(scene.goal, n=5)
            outcomes.append((budget, result))
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n=== §5.6 anytime curve (Figure 1 scene, interleaved prover) ===")
    print(f"{'budget':>10} {'truncated':>10} {'snippets':>9} "
          f"{'expected found':>15}")
    for budget, result in outcomes:
        codes = [snippet.code for snippet in result.snippets]
        hit = "new SequenceInputStream(body, sig)" in codes
        label = "none" if budget is None else f"{budget * 1000:.0f} ms"
        print(f"{label:>10} {str(result.explore_truncated):>10} "
              f"{len(result.snippets):>9} {str(hit):>15}")

    # Unlimited budget finds the full answer.
    _, unlimited = outcomes[0]
    assert len(unlimited.snippets) == 5
    # Every budget, however tight, returns cleanly (no exception) and
    # anything returned is ranked.
    for _budget, result in outcomes:
        assert [s.rank for s in result.snippets] == \
            list(range(1, len(result.snippets) + 1))
    # A modest 100 ms budget already produces suggestions on this scene.
    budget_100 = dict((b, r) for b, r in outcomes)[0.1]
    assert budget_100.snippets
