"""Shim for environments without the `wheel` package (offline editable installs).

`pip install -e .` requires wheel for PEP 660; this sandbox has no network,
so `python setup.py develop` (or a .pth file) provides the editable install.
Configuration lives in pyproject.toml.
"""
from setuptools import setup

setup()
